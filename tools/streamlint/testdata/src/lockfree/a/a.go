// Package a exercises the lockfree analyzer: annotated roots must not
// transitively acquire sync locks or call step-loop functions.
package a

import "sync"

var mu sync.Mutex
var rw sync.RWMutex

// ServeDirect locks directly on the annotated function.
//
//streamlint:lockfree
func ServeDirect() { // want `a\.ServeDirect is annotated //streamlint:lockfree but transitively acquires \(\*sync\.Mutex\)\.Lock .*call chain: lockfree/a\.ServeDirect -> \(\*sync\.Mutex\)\.Lock`
	mu.Lock()
	defer mu.Unlock()
}

func helper() {
	mu.Lock()
	mu.Unlock()
}

func middle() {
	helper()
}

// ServeIndirect reaches the lock two frames down; the chain names each hop.
//
//streamlint:lockfree
func ServeIndirect() { // want `call chain: lockfree/a\.ServeIndirect -> lockfree/a\.middle -> lockfree/a\.helper -> \(\*sync\.Mutex\)\.Lock`
	middle()
}

func readLocked() int {
	rw.RLock()
	defer rw.RUnlock()
	return 1
}

// ServeRead reaches an RWMutex read lock through a helper.
//
//streamlint:lockfree
func ServeRead() int { // want `transitively acquires \(\*sync\.RWMutex\)\.RLock`
	return readLocked()
}

// Source is dispatched through an interface: CHA resolves the call to both
// implementations, and the locking one is flagged.
type Source interface {
	Get() int
}

type lockingSource struct{ mu sync.Mutex }

func (s *lockingSource) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return 1
}

type pureSource struct{ v int }

func (s *pureSource) Get() int { return s.v }

// ServeIface calls through the interface; the chain goes through the
// locking implementation.
//
//streamlint:lockfree
func ServeIface(s Source) int { // want `call chain: lockfree/a\.ServeIface -> \(\*lockfree/a\.lockingSource\)\.Get -> \(\*sync\.Mutex\)\.Lock`
	return s.Get()
}

// ServePure only dispatches to implementations, and the analyzer still
// follows them — but a pure concrete call is clean.
//
//streamlint:lockfree
func ServePure(s *pureSource) int {
	return s.Get()
}

// exemptedHelper takes a lock, but its declaration waives the check with a
// justified directive.
//
//streamlint:lockfree-exempt fixture: bounded O(1) critical section, never contends with the step loop
func exemptedHelper() {
	mu.Lock()
	mu.Unlock()
}

// ServeExempted is clean: the only lock is behind a declaration-level
// exemption.
//
//streamlint:lockfree
func ServeExempted() {
	exemptedHelper()
}

// ServeSiteExempt is clean: the offending call edge is waived at the site.
//
//streamlint:lockfree
func ServeSiteExempt() {
	middle() //streamlint:lockfree-exempt fixture: this call is audited by hand
}

// Step stands in for the engine step loop.
//
//streamlint:steploop
func Step() {}

func viaStep() { Step() }

// ServeStep must not reach the step loop, even indirectly.
//
//streamlint:lockfree
func ServeStep() { // want `transitively calls step-loop function lockfree/a\.Step: call chain: lockfree/a\.ServeStep -> lockfree/a\.viaStep -> lockfree/a\.Step`
	viaStep()
}

// ServeMethodValue binds the lock as a method value; the reference edge is
// treated as a call.
//
//streamlint:lockfree
func ServeMethodValue() { // want `transitively acquires \(\*sync\.Mutex\)\.Lock`
	f := mu.Lock
	f()
	mu.Unlock()
}

// ServeClean is the negative case: arithmetic, slices, channel-free code.
//
//streamlint:lockfree
func ServeClean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}
