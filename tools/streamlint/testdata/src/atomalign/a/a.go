// Fixture for the atomalign analyzer: 64-bit atomics on struct fields that
// are not 8-byte aligned under 32-bit layout rules.
package a

import "sync/atomic"

// misaligned puts the counter at offset 4 on 386 (int64 has 4-byte alignment
// there, so no padding is inserted).
type misaligned struct {
	pad int32
	n   int64
}

func addMisaligned(s *misaligned) {
	atomic.AddInt64(&s.n, 1) // want `atomic.AddInt64 on field n at 32-bit offset 4`
}

// aligned leads with the counter: offset 0 is the start of the allocation,
// which the runtime 8-aligns.
type aligned struct {
	n   int64
	pad int32
}

func addAligned(s *aligned) {
	atomic.AddInt64(&s.n, 1)
}

// Chained selectors accumulate offsets: stats sits at offset 4, so its first
// counter lands at 4.
type inner struct{ hits int64 }

type outer struct {
	pad   int32
	stats inner
}

func addChained(o *outer) {
	atomic.AddInt64(&o.stats.hits, 1) // want `atomic.AddInt64 on field hits at 32-bit offset 4`
}

// A pointer hop restarts layout at a fresh allocation, so the same chain
// through a pointer is fine.
type outerPtr struct {
	pad   int32
	stats *inner
}

func addThroughPointer(o *outerPtr) {
	atomic.AddInt64(&o.stats.hits, 1)
}

// Loads and stores are covered, not just Add.
func loadMisaligned(s *misaligned) int64 {
	return atomic.LoadInt64(&s.n) // want `atomic.LoadInt64 on field n at 32-bit offset 4`
}

// 32-bit operations have no 8-byte requirement.
type counters32 struct {
	pad int32
	n   int32
}

func add32(s *counters32) {
	atomic.AddInt32(&s.n, 1)
}

// Escape hatch: a justified //streamlint:atomic-ok waives the check.
func waived(s *misaligned) {
	//streamlint:atomic-ok this struct is only ever heap-allocated on 64-bit builds
	atomic.AddInt64(&s.n, 1)
}
