// Fixture for the detorder analyzer: map-iteration order, global math/rand
// and time.Now on deterministic paths.
package a

import (
	"math/rand"
	"sort"
	"time"
)

// Positive: float accumulation inside a map range is order-sensitive.
func sumValues(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation into total`
	}
	return total
}

// Positive: keys collected in map order and never sorted.
func unsortedKeys(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `keys collects map keys in randomized iteration order`
	}
	return keys
}

// Positive: append into a struct field, also unsorted.
type bag struct{ items []int }

func unsortedFieldKeys(m map[int]bool) bag {
	var b bag
	for k := range m {
		b.items = append(b.items, k) // want `b.items collects map keys in randomized iteration order`
	}
	return b
}

// Positive: RNG draws consumed in map order assign different values per key
// across runs even when the RNG is seeded.
func drawPerKey(m map[int]bool, r *rand.Rand) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k := range m {
		out[k] = r.Float64() // want `RNG draw inside map iteration`
	}
	return out
}

// Positive: the global math/rand source is unseeded.
func globalDraw() int {
	return rand.Intn(10) // want `global math/rand.Intn`
}

// Positive: wall-clock reads have no place on a seeded path.
func clock() time.Time {
	return time.Now() // want `time.Now on a seeded deterministic path`
}

// Negative: the repository idiom — collect keys, then sort — is recognized.
func sortedKeys(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Negative: sorting a field append works too.
func sortedFieldKeys(m map[int]bool) bag {
	var b bag
	for k := range m {
		b.items = append(b.items, k)
	}
	sort.Ints(b.items)
	return b
}

// Negative: rand.New / rand.NewSource are constructors, not draws from the
// global source.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Negative: indexed accumulation is per-slot and order-insensitive.
func histogram(m map[int]float64, bins []float64) {
	for k, v := range m {
		bins[k%len(bins)] += v
	}
}

// Positive: the delta-propagation anti-pattern — a frontier kept as a set
// and expanded by ranging over it. The candidate list comes out in
// randomized order, so stage splices (and their float accumulation) differ
// across runs.
func expandFrontier(frontier map[int]bool, adj [][]int) []int {
	var cand []int
	for v := range frontier {
		cand = append(cand, v) // want `cand collects map keys in randomized iteration order`
		cand = append(cand, adj[v]...)
	}
	return cand
}

// Negative: the dgnn.RunDelta idiom — drain the frontier set into a slice,
// sort it, then expand deterministically.
func expandFrontierSorted(frontier map[int]bool, adj [][]int) []int {
	ids := make([]int, 0, len(frontier))
	for v := range frontier {
		ids = append(ids, v)
	}
	sort.Ints(ids)
	var cand []int
	for _, v := range ids {
		cand = append(cand, v)
		cand = append(cand, adj[v]...)
	}
	return cand
}

// Positive: the conflict-graph anti-pattern — partition node sets kept as
// maps and drained by ranging, so the claim order (and thus which unit a
// shared node unions on) differs across runs.
func conflictNodes(balls []map[int]bool) []int {
	var claimed []int
	for _, ball := range balls {
		for v := range ball {
			claimed = append(claimed, v) // want `claimed collects map keys in randomized iteration order`
		}
	}
	return claimed
}

// Negative: the core conflict-build idiom — collect each ball's nodes, sort,
// then stamp/union in deterministic node order.
func conflictNodesSorted(balls []map[int]bool) []int {
	var claimed []int
	for _, ball := range balls {
		ids := make([]int, 0, len(ball))
		for v := range ball {
			ids = append(ids, v)
		}
		sort.Ints(ids)
		claimed = append(claimed, ids...)
	}
	return claimed
}

// Escape hatch: a justified //streamlint:ordered-ok waives the check.
func waived(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		//streamlint:ordered-ok diagnostics-only aggregate, never feeds training
		total += v
	}
	return total
}

// An empty justification does not waive anything.
func emptyJustification(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		//streamlint:ordered-ok
		total += v // want `floating-point accumulation into total`
	}
	return total
}
