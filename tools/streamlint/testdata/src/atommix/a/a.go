// Package a exercises the atommix analyzer: once a field or package-level
// var is accessed through sync/atomic, every access must be atomic.
package a

import (
	"sync/atomic"

	"atommix/b"
)

// Stats is the classic counter block: workers Add atomically, so every
// reader must Load atomically too.
type Stats struct {
	Hits   int64
	Misses int64
}

type Server struct {
	stats Stats
	done  int64
}

func (s *Server) work() {
	atomic.AddInt64(&s.stats.Hits, 1)
	atomic.AddInt64(&s.stats.Misses, 1)
	atomic.StoreInt64(&s.done, 1)
}

func (s *Server) goodRead() int64 {
	st := &s.stats // taking the struct's address is fine
	return atomic.LoadInt64(&st.Hits) + atomic.LoadInt64(&s.done)
}

func (s *Server) goodPointerCopy() *Stats {
	st := &s.stats
	p := st // copying a pointer touches no fields
	return p
}

func (s *Server) badRead() int64 {
	return s.stats.Hits // want `plain read of atommix/a\.Stats\.Hits, which is accessed atomically`
}

func (s *Server) badWrite() {
	s.stats.Misses = 0 // want `plain write of atommix/a\.Stats\.Misses, which is accessed atomically`
}

func (s *Server) badCopy() Stats {
	return s.stats // want `plain copy of struct atommix/a\.Stats whose field atommix/a\.Stats\.Hits is accessed atomically`
}

func (s *Server) exemptRead() int64 {
	//streamlint:atommix fixture: reader runs after every writer goroutine has joined
	return s.stats.Hits
}

// plainOnly is never touched atomically, so plain access stays legal.
type plainOnly struct {
	n int64
}

func (p *plainOnly) bump() int64 {
	p.n++
	return p.n
}

// counter is a package-level var accessed atomically by incr.
var counter int64

func incr() {
	atomic.AddInt64(&counter, 1)
}

func badGlobalRead() int64 {
	return counter // want `plain read of atommix/a\.counter, which is accessed atomically`
}

// CrossPackage reads b.Ops plainly while package b writes it atomically —
// the program-wide view catches the mix across package boundaries.
func CrossPackage() int64 {
	b.Record()
	return b.Ops // want `plain read of atommix/b\.Ops, which is accessed atomically`
}
