// Package b is the writer side of the cross-package atommix fixture.
package b

import "sync/atomic"

// Ops counts recorded operations; writers use sync/atomic.
var Ops int64

// Record bumps the counter from worker goroutines.
func Record() {
	atomic.AddInt64(&Ops, 1)
}
