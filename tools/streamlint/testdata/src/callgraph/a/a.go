// Package a is the call-graph construction fixture: plain, deferred,
// goroutine, closure, method-value and interface-dispatched calls.
package a

type Doer interface{ Do() }

type A struct{}

func (A) Do() {}

type B struct{}

func (B) Do() {}

type T struct{}

func (T) M() {}

func Root(d Doer) {
	plain()
	defer deferred()
	go spawned()
	func() { inClosure() }()
	var t T
	f := t.M
	f()
	d.Do()
}

func plain()     {}
func deferred()  {}
func spawned()   {}
func inClosure() {}
