// Fixture proving detorder's scoping: internal/bench is NOT one of the
// deterministic-path packages, so none of these order-sensitive constructs
// are flagged.
package bench

import "time"

func sumValues(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

func wallClock() time.Time { return time.Now() }
