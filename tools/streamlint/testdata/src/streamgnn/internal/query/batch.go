// Fixture proving detorder covers the batched serving path in
// internal/query: a micro-batch assembled by iterating a map of pending
// queries would answer in randomized order, so pending batches must be
// collected and sorted before the shared forward pass.
package query

import "sort"

type request struct {
	Anchor int
}

// Positive: flattening a pending-batch map straight into the request slice
// leaks map iteration order into the answer order.
func flattenPending(pending map[int][]request) []request {
	var reqs []request
	for _, batch := range pending {
		reqs = append(reqs, batch...) // want `reqs collects map keys in randomized iteration order`
	}
	return reqs
}

// Positive: scoring while iterating the pending map accumulates in map order.
func batchLossUnsorted(pending map[int]request, score func(request) float64) float64 {
	var loss float64
	for _, q := range pending {
		loss += score(q) // want `floating-point accumulation into loss`
	}
	return loss
}

// Negative: the required idiom — collect the due steps, sort them, then
// assemble the batch in deterministic order.
func flattenPendingSorted(pending map[int][]request) []request {
	var due []int
	for step := range pending {
		due = append(due, step)
	}
	sort.Ints(due)
	var reqs []request
	for _, step := range due {
		reqs = append(reqs, pending[step]...)
	}
	return reqs
}
