// Stub of the real streamgnn/internal/autodiff package, just enough surface
// for poolsafe fixtures (the analyzer matches by import-path suffix).
package autodiff

import "streamgnn/internal/tensor"

// Node is a tape node whose buffers belong to the tape.
type Node struct{ Value *tensor.Matrix }

// Tape records operations and owns the node storage.
type Tape struct{}

// NewTape returns a tape.
func NewTape() *Tape { return &Tape{} }

// Release recycles every node the tape produced.
func (t *Tape) Release() {}

// Add is a tape operation producing a node.
func (t *Tape) Add(a, b *Node) *Node { return &Node{} }

// Forward is a free function taking the tape and producing a node.
func Forward(tp *Tape, x *tensor.Matrix) *Node { return &Node{} }
