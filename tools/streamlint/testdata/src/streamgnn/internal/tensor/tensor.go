// Stub of the real streamgnn/internal/tensor package, just enough surface
// for poolsafe fixtures (the analyzer matches by import-path suffix).
package tensor

// Matrix is a pooled dense matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a pooled matrix.
func New(rows, cols int) *Matrix { return &Matrix{Rows: rows, Cols: cols} }

// Recycle hands the matrix back to the pool.
func Recycle(m *Matrix) {}

// Sum reads the matrix.
func Sum(m *Matrix) float64 { return 0 }
