// Package a exercises the snapimmut analyzer with miniature Matrix,
// EmbStore and QuerySnapshot types mirroring the real serving path.
package a

// Matrix is a dense row-major matrix, like tensor.Matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }
func (m *Matrix) At(r, c int) float64     { return m.Data[r*m.Cols+c] }
func (m *Matrix) Row(r int) []float64     { return m.Data[r*m.Cols : (r+1)*m.Cols] }
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(c.Data, m.Data)
	return c
}

// EmbStore owns the live matrix and publishes copy-on-write references.
type EmbStore struct {
	emb    *Matrix
	shared bool
}

func (s *EmbStore) Publish() *Matrix {
	s.shared = true
	return s.emb
}

// QuerySnapshot captures a published matrix, like the real serving snapshot.
type QuerySnapshot struct {
	emb *Matrix
}

// scale mutates its parameter through an index store; callers handing it a
// published matrix are flagged via the interprocedural summary.
func scale(m *Matrix, f float64) {
	for i := range m.Data {
		m.Data[i] *= f
	}
}

// fill mutates its second parameter, not its first.
func fill(src *Matrix, dst *Matrix) {
	copy(dst.Data, src.Data)
}

// Mutator is dispatched through an interface; the mutating implementation
// taints every dispatch site (CHA over-approximation).
type Mutator interface {
	Apply(m *Matrix)
}

type zeroer struct{}

func (zeroer) Apply(m *Matrix) {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

func MutateDirect(s *EmbStore) {
	m := s.Publish()
	m.Set(0, 0, 1) // want `\(\*snapimmut/a\.Matrix\)\.Set mutates a value derived from Publish\(\)`
}

func MutateRowAlias(s *EmbStore) {
	m := s.Publish()
	row := m.Row(0)
	row[0] = 1 // want `store into a value derived from Publish\(\)`
}

func MutateDataIndex(s *EmbStore) {
	m := s.Publish()
	m.Data[3] = 1 // want `store into a value derived from Publish\(\)`
}

func MutateCopy(s *EmbStore, src []float64) {
	m := s.Publish()
	copy(m.Row(0), src) // want `copy\(\) into a value derived from Publish\(\)`
}

func MutateIndirect(s *EmbStore) {
	m := s.Publish()
	scale(m, 2) // want `argument 1 of snapimmut/a\.scale is mutated by the callee; it is a value derived from Publish\(\)`
}

func MutateSecondArg(s *EmbStore, src *Matrix) {
	m := s.Publish()
	fill(src, m) // want `argument 2 of snapimmut/a\.fill is mutated by the callee; it is a value derived from Publish\(\)`
}

func MutateViaInterface(s *EmbStore, mut Mutator) {
	m := s.Publish()
	mut.Apply(m) // want `mutated by the callee; it is a value derived from Publish\(\)`
}

func MutateSnapshotField(snap *QuerySnapshot) {
	snap.emb.Set(0, 0, 1) // want `\(\*snapimmut/a\.Matrix\)\.Set mutates a value captured in a QuerySnapshot`
}

func MutateSnapshotVar(snap *QuerySnapshot) {
	m := snap.emb
	m.Data[0] = 1 // want `store into a value captured in a QuerySnapshot`
}

// CloneThenMutate is the sanctioned pattern: Clone breaks the taint.
func CloneThenMutate(s *EmbStore) *Matrix {
	m := s.Publish().Clone()
	m.Set(0, 0, 1)
	return m
}

// ReassignClears rebinds the variable to a fresh matrix; mutating the new
// value is fine.
func ReassignClears(s *EmbStore) {
	m := s.Publish()
	m = &Matrix{Rows: 1, Cols: 1, Data: make([]float64, 1)}
	m.Set(0, 0, 1)
}

// ReadOnly consumes published state without mutating it.
func ReadOnly(snap *QuerySnapshot) float64 {
	sum := 0.0
	for _, v := range snap.emb.Row(0) {
		sum += v
	}
	return sum + snap.emb.At(0, 0)
}

// ReadThroughHelper passes published state to a non-mutating function.
func ReadThroughHelper(s *EmbStore) float64 {
	m := s.Publish()
	return total(m)
}

func total(m *Matrix) float64 {
	sum := 0.0
	for _, v := range m.Data {
		sum += v
	}
	return sum
}

// ExemptedMutation is waived by the sanctioned clone-once COW escape hatch.
func ExemptedMutation(s *EmbStore) {
	m := s.Publish()
	//streamlint:cow-exempt fixture: sanctioned clone-once COW seeding before the snapshot escapes
	m.Set(0, 0, 1)
}
