// Fixture for the ckptstate analyzer: checkpointable types must account for
// every field.
package a

// State is the serialized form.
type State struct {
	Count   int
	Moments []float64
}

// Counter has dump and restore methods, so every field must be serialized or
// exempted.
type Counter struct {
	count   int
	moments []float64
	scratch []float64 // want `field scratch of checkpointable type Counter is neither dumped nor restored`
	//streamlint:ckpt-exempt rebuilt lazily from moments on first use
	cache []float64
	//streamlint:ckpt-exempt
	unjustified int // want `field unjustified of checkpointable type Counter is neither dumped nor restored`
}

// DumpState serializes the counter.
func (c *Counter) DumpState() State {
	return State{Count: c.count, Moments: append([]float64(nil), c.moments...)}
}

// RestoreState restores a dump.
func (c *Counter) RestoreState(st State) error {
	c.count = st.Count
	c.moments = append(c.moments[:0], st.Moments...)
	return nil
}

// DumpOnly has no restore-side method, so it is not checkpointable and its
// fields are unconstrained.
type DumpOnly struct {
	count   int
	scratch []float64
}

// DumpState serializes the counter.
func (d *DumpOnly) DumpState() State { return State{Count: d.count} }

// Nested proves that a field referenced through a deeper selection
// (n.inner.val) still counts as referenced.
type Nested struct {
	inner struct{ val int }
}

// DumpState serializes the nested value.
func (n *Nested) DumpState() State { return State{Count: n.inner.val} }

// RestoreState restores it.
func (n *Nested) RestoreState(st State) error {
	n.inner.val = st.Count
	return nil
}
