// Fixture for the poolsafe analyzer: use-after-release and double-release of
// pooled matrices and released tape nodes.
package a

import (
	"streamgnn/internal/autodiff"
	"streamgnn/internal/tensor"
)

// Positive: reading a matrix after handing it back to the pool.
func useAfterRecycle() float64 {
	m := tensor.New(2, 2)
	tensor.Recycle(m)
	return tensor.Sum(m) // want `use after release: m is a recycled matrix`
}

// Positive: recycling the same matrix twice.
func doubleRecycle() {
	m := tensor.New(2, 2)
	tensor.Recycle(m)
	tensor.Recycle(m) // want `double release: m was already recycled`
}

// Positive: a tape-produced node outlives the tape's Release.
func useAfterTapeRelease() *autodiff.Node {
	tp := autodiff.NewTape()
	n := tp.Add(nil, nil)
	tp.Release()
	return n // want `use after release: n is a released tape node`
}

// Positive: nodes from free functions that take the tape count too.
func useAfterTapeReleaseFree(x *tensor.Matrix) *autodiff.Node {
	tp := autodiff.NewTape()
	n := autodiff.Forward(tp, x)
	tp.Release()
	return n // want `use after release: n is a released tape node`
}

// Negative: reassignment gives the name a fresh buffer.
func reassigned() float64 {
	m := tensor.New(2, 2)
	tensor.Recycle(m)
	m = tensor.New(2, 2)
	return tensor.Sum(m)
}

// Negative: a release inside a branch may not execute, so statements after
// the branch stay clean.
func branchRelease(cond bool) float64 {
	m := tensor.New(2, 2)
	if cond {
		tensor.Recycle(m)
	}
	return tensor.Sum(m)
}

// Negative: deferred release runs at function exit, after every use.
func deferredRelease() float64 {
	tp := autodiff.NewTape()
	defer tp.Release()
	n := tp.Add(nil, nil)
	return float64(len(n.Value.Data))
}

// Escape hatch: a justified //streamlint:pool-ok waives the check.
func waived() float64 {
	m := tensor.New(2, 2)
	tensor.Recycle(m)
	//streamlint:pool-ok read-only diagnostic access before the pool can reuse the buffer
	return tensor.Sum(m)
}
