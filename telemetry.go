package streamgnn

import (
	"sync/atomic"

	"streamgnn/internal/obs"
)

// Phase names of one Engine.Step, in execution order. Each phase has its own
// latency histogram in Telemetry.Phases under these keys.
const (
	PhaseExpire  = "expire"  // sliding-window edge expiry
	PhaseForward = "forward" // full-snapshot forward inference
	PhaseReveal  = "reveal"  // truth reveal + drift observation
	PhasePredict = "predict" // query answering from fresh embeddings
	PhaseTrain   = "train"   // the strategy's online training
)

// indices into engineTelemetry.phases, aligned with StepPhases().
const (
	phaseExpire = iota
	phaseForward
	phaseReveal
	phasePredict
	phaseTrain
	numPhases
)

// StepPhases returns the phase names of one Step in execution order.
func StepPhases() []string {
	return []string{PhaseExpire, PhaseForward, PhaseReveal, PhasePredict, PhaseTrain}
}

// engineTelemetry holds the engine's internal instruments. Histograms and
// counters are individually atomic, so Telemetry() may be called concurrently
// with Step — snapshots are only loosely consistent (counts may straddle an
// in-flight step), which is fine for monitoring.
type engineTelemetry struct {
	steps  obs.Counter
	step   *obs.Histogram
	phases [numPhases]*obs.Histogram

	// Forward-mode instruments: how many steps ran a full-snapshot forward
	// vs. a dirty-region incremental one, how many embedding rows the
	// incremental path avoided recomputing, and the distribution of the
	// dirty (compute-region) fraction per incremental-mode step.
	fullForwards obs.Counter
	incForwards  obs.Counter
	skippedRows  obs.Counter
	dirtyFrac    *obs.Histogram

	// Delta-propagation instruments (only move with Config.DeltaForward):
	// steps served by a delta pass, passes aborted on the candidate budget,
	// candidate rows recomputed vs. pruned sub-epsilon, and the per-pass
	// pruned-frontier fraction distribution.
	deltaForwards      obs.Counter
	deltaAborts        obs.Counter
	deltaCandidateRows obs.Counter
	deltaPrunedRows    obs.Counter
	deltaPrunedFrac    *obs.Histogram

	// Sharded-pipeline instruments (nil/empty when Shards <= 1): the
	// latency of the deterministic cross-shard merge phase and, per shard,
	// the embedding rows its forwards contributed.
	shardMerge *obs.Histogram
	shardRows  []obs.Counter

	// Dependency-schedule instrument (only moves with DependencySchedule):
	// per training step, conflict groups formed over units scheduled — 1.0
	// means every unit ran independently, 1/units means the step collapsed
	// to the serial schedule. prevSchedGroups/prevSchedUnits are the
	// learner-counter watermarks the per-step deltas are computed against.
	schedGroupFrac  *obs.Histogram
	prevSchedGroups int64
	prevSchedUnits  int64
}

func (t *engineTelemetry) init(shards int) {
	t.step = obs.NewHistogram(obs.DefaultLatencyBuckets())
	for i := range t.phases {
		t.phases[i] = obs.NewHistogram(obs.DefaultLatencyBuckets())
	}
	t.dirtyFrac = obs.NewHistogram(obs.FractionBuckets())
	t.deltaPrunedFrac = obs.NewHistogram(obs.FractionBuckets())
	t.schedGroupFrac = obs.NewHistogram(obs.FractionBuckets())
	if shards > 1 {
		t.shardMerge = obs.NewHistogram(obs.DefaultLatencyBuckets())
		t.shardRows = make([]obs.Counter, shards)
	}
}

// TelemetryHistogram is a latency distribution snapshot: per-bucket counts
// (not cumulative) over log-spaced upper bounds in seconds, plus the count
// and sum of all observations.
type TelemetryHistogram struct {
	// Count is the number of observations; Sum their total in seconds.
	Count int64
	Sum   float64
	// Bounds are the inclusive bucket upper bounds in seconds; Counts has
	// one extra trailing slot for observations above the last bound.
	Bounds []float64
	Counts []int64
}

// Mean returns the mean observation in seconds (0 when empty).
func (h TelemetryHistogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Telemetry is a point-in-time snapshot of the engine's operational
// instruments: step throughput and per-phase latency distributions.
// Counter-style observability (training targets, cache activity, chip moves)
// stays on Stats; Telemetry covers where the time goes.
type Telemetry struct {
	// Steps is the number of completed Step calls.
	Steps int64
	// Step is the whole-step latency distribution.
	Step TelemetryHistogram
	// Phases maps each StepPhases() name to its latency distribution.
	Phases map[string]TelemetryHistogram

	// FullForwards counts steps whose inference recomputed the whole
	// snapshot; IncrementalForwards counts steps served by the dirty-region
	// path (including quiet-step cache reuse). Without IncrementalForward
	// every step is a full forward.
	FullForwards        int64
	IncrementalForwards int64
	// SkippedRows totals the embedding rows incremental steps did not
	// recompute (graph size minus compute-region size, summed over steps).
	SkippedRows int64
	// DirtyFraction is the per-step distribution of |compute region| / |V|
	// in incremental mode: 0 for quiet steps, 1 for fallback full forwards.
	// Empty unless Config.IncrementalForward is set. In delta mode the
	// observation is candidate rows over |V|·stages.
	DirtyFraction TelemetryHistogram

	// Delta-propagation fields, zero unless Config.DeltaForward is set and
	// the model has a delta decomposition. DeltaForwards counts steps served
	// by a delta pass (also counted in IncrementalForwards); DeltaAborts
	// counts passes whose candidate set blew the budget and fell back to a
	// full forward. DeltaCandidateRows and DeltaPrunedRows total the stage
	// rows recomputed and the subset discarded sub-epsilon;
	// DeltaPrunedFraction is the per-pass pruned/candidates distribution —
	// the pruned-frontier fraction.
	DeltaForwards       int64
	DeltaAborts         int64
	DeltaCandidateRows  int64
	DeltaPrunedRows     int64
	DeltaPrunedFraction TelemetryHistogram

	// Dependency-schedule fields, zero unless Config.DependencySchedule is
	// set. SchedSteps counts adaptive training rounds run under the
	// conflict-group schedule, SchedGroups/SchedUnits the groups formed and
	// units scheduled across them, SchedCollapsedSteps the rounds that
	// collapsed into a single group; SchedGroupFraction is the per-engine-step
	// distribution of groups/units (1.0 = fully independent units, near 0 =
	// hub collapse).
	SchedSteps          int64
	SchedGroups         int64
	SchedUnits          int64
	SchedCollapsedSteps int64
	SchedGroupFraction  TelemetryHistogram

	// Sharded-pipeline fields, zero/nil unless Config.Shards > 1.
	// Shards is the partition width P; ShardNodes the current node
	// occupancy per shard; ShardSplicedRows the total embedding rows each
	// shard's forwards contributed; CrossShardEdgeFraction the fraction of
	// live edges whose endpoints live on different shards; ShardMerge the
	// latency distribution of the cross-shard merge phase.
	Shards                 int
	ShardNodes             []int64
	ShardSplicedRows       []int64
	CrossShardEdgeFraction float64
	ShardMerge             TelemetryHistogram
}

// Telemetry returns a snapshot of the engine's step and phase timings. Safe
// to call concurrently with Step, except for the shard occupancy and edge
// counters: those ride the graph-mutation funnel unsynchronized, so when
// Config.Shards > 1 take snapshots between Step calls (or under the same
// lock as Step, as cmd/queryd does).
func (e *Engine) Telemetry() Telemetry {
	t := Telemetry{
		Steps:               e.tele.steps.Value(),
		Step:                histSnapshot(e.tele.step),
		Phases:              make(map[string]TelemetryHistogram, numPhases),
		FullForwards:        e.tele.fullForwards.Value(),
		IncrementalForwards: e.tele.incForwards.Value(),
		SkippedRows:         e.tele.skippedRows.Value(),
		DirtyFraction:       histSnapshot(e.tele.dirtyFrac),
		DeltaForwards:       e.tele.deltaForwards.Value(),
		DeltaAborts:         e.tele.deltaAborts.Value(),
		DeltaCandidateRows:  e.tele.deltaCandidateRows.Value(),
		DeltaPrunedRows:     e.tele.deltaPrunedRows.Value(),
		DeltaPrunedFraction: histSnapshot(e.tele.deltaPrunedFrac),
		SchedGroupFraction:  histSnapshot(e.tele.schedGroupFrac),
	}
	if e.sched != nil {
		if a := e.sched.Adaptive; a != nil {
			t.SchedSteps = atomic.LoadInt64(&a.SchedSteps)
			t.SchedGroups = atomic.LoadInt64(&a.SchedGroups)
			t.SchedUnits = atomic.LoadInt64(&a.SchedUnits)
			t.SchedCollapsedSteps = atomic.LoadInt64(&a.SchedCollapsed)
		}
	} else if p := e.pending; p != nil {
		t.SchedSteps = p.schedSteps
		t.SchedGroups = p.schedGroups
		t.SchedUnits = p.schedUnits
		t.SchedCollapsedSteps = p.schedCollapse
	}
	for i, name := range StepPhases() {
		t.Phases[name] = histSnapshot(e.tele.phases[i])
	}
	if e.shards != nil {
		st := e.g.ShardStats()
		t.Shards = st.Shards
		t.ShardNodes = st.Occupancy
		t.CrossShardEdgeFraction = st.CrossFraction()
		t.ShardSplicedRows = make([]int64, len(e.tele.shardRows))
		for i := range e.tele.shardRows {
			t.ShardSplicedRows[i] = e.tele.shardRows[i].Value()
		}
		t.ShardMerge = histSnapshot(e.tele.shardMerge)
	}
	return t
}

func histSnapshot(h *obs.Histogram) TelemetryHistogram {
	s := h.Snapshot()
	return TelemetryHistogram{Count: s.Count, Sum: s.Sum, Bounds: s.Bounds, Counts: s.Counts}
}
