// Healthcare: the paper's Example 1 — an ICU graph stream with patients,
// procedures and lab events, monitored by the continuous predictive query
// "notify me when it is predicted that, in the next hour, grouped by the
// medical procedure, the number of patients tested with abnormal results is
// above a threshold".
//
// Patients connect to procedure nodes (static relations) and produce
// timestamped lab-event edges; each patient's abnormality risk follows the
// severity of their ward, which drifts over time. The engine trains a
// GCLSTM online with the KDE strategy and fires alerts per procedure.
//
// Run with:
//
//	go run ./examples/healthcare
package main

import (
	"fmt"
	"math/rand"

	"streamgnn"
)

const (
	typeProcedure = 0
	typePatient   = 1

	numProcedures = 6
	numPatients   = 60
	steps         = 40
	delta         = 1 // "next hour" = next step
	threshold     = 3.0
)

func main() {
	cfg := streamgnn.DefaultConfig()
	cfg.Model = "RTGCN" // relation-aware: lab-event vs static-relation edges
	cfg.Hidden = 12
	cfg.Seed = 11
	eng, err := streamgnn.NewEngine(3, cfg)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(11))

	// Procedure nodes (query anchors) and patients with a static relation
	// to one procedure each — the "properties" edges of Figure 1.
	procs := make([]int, numProcedures)
	for p := range procs {
		procs[p] = eng.AddNode(typeProcedure, []float64{1, 0, 0})
	}
	patientProc := make([]int, numPatients)
	for i := 0; i < numPatients; i++ {
		id := eng.AddNode(typePatient, []float64{0, 1, 0})
		patientProc[i] = rng.Intn(numProcedures)
		eng.AddUndirectedEdge(id, procs[patientProc[i]], 0)
	}

	// Severity per procedure ward drifts slowly; abnormal lab counts follow.
	severity := make([]float64, numProcedures)
	for p := range severity {
		severity[p] = 0.2 + 0.3*rng.Float64()
	}
	truth := make(map[[2]int]float64) // (procedure anchor, step) -> abnormal count

	err = eng.AddQuery(streamgnn.Query{
		Name:      "abnormal labs per procedure",
		Anchors:   procs,
		Delta:     delta,
		Threshold: threshold,
		Labeler: func(anchor, step int) (float64, bool) {
			v, ok := truth[[2]int{anchor, step}]
			return v, ok
		},
	})
	if err != nil {
		panic(err)
	}

	alerts := 0
	for step := 0; step < steps; step++ {
		// Ward severity drifts; occasionally a ward has an outbreak.
		for p := range severity {
			severity[p] += 0.05 * rng.NormFloat64()
			if severity[p] < 0.05 {
				severity[p] = 0.05
			}
			if severity[p] > 0.95 {
				severity[p] = 0.95
			}
			if rng.Float64() < 0.03 {
				severity[p] = 0.9 // outbreak
			}
		}
		// Lab events: each patient tests with abnormality probability given
		// by their ward severity; abnormal results are timestamped edges
		// carrying a self-supervision label.
		abnormal := make([]float64, numProcedures)
		for i := 0; i < numPatients; i++ {
			patient := numProcedures + i
			if rng.Float64() < 0.4 { // patient tested this hour
				isAbnormal := rng.Float64() < severity[patientProc[i]]
				label := 0.0
				if isAbnormal {
					label = 1
					abnormal[patientProc[i]]++
				}
				eng.AddLabeledEdge(patient, procs[patientProc[i]], 1, label)
			}
		}
		// Procedure features expose current ward state to the model.
		for p, proc := range procs {
			eng.SetFeature(proc, []float64{1, severity[p], abnormal[p] / 10})
			truth[[2]int{proc, step}] = abnormal[p]
		}
		if err := eng.Step(); err != nil {
			panic(err)
		}
		for _, a := range eng.TakeAlerts() {
			alerts++
			fmt.Printf("hour %2d: predicted %.1f abnormal results for procedure %d at hour %d — allocate resources\n",
				step, a.Score, a.Anchor, a.ForStep)
		}
	}

	m := eng.Metrics()
	fmt.Printf("\n%d alerts fired; %d predictions resolved; MSE %.3f AUC %.3f\n",
		alerts, m.N, m.MSE, m.AUC)
}
