// Fraud: a Bitcoin/Elliptic-style monitor. Transactions stream in as nodes
// labeled licit/illicit (self-supervision); the engine simultaneously
// answers the continuous query "notify me when the illicit-flow intensity of
// an exchange is predicted to spike" and keeps its TGCN current with the
// Weighted adaptive strategy — spending training time where illicit
// activity concentrates.
//
// Run with:
//
//	go run ./examples/fraud
package main

import (
	"fmt"
	"math/rand"

	"streamgnn"
)

func main() {
	cfg := streamgnn.DefaultConfig()
	cfg.Model = "TGCN"
	cfg.Strategy = streamgnn.StrategyWeighted
	cfg.Hidden = 12
	cfg.Seed = 3
	cfg.WindowSteps = 8 // old flows age out
	eng, err := streamgnn.NewEngine(4, cfg)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(3))

	// Exchanges are long-lived hubs; their intensity of suspicious flows is
	// what the compliance team monitors.
	const exchanges = 5
	hubs := make([]int, exchanges)
	for e := range hubs {
		hubs[e] = eng.AddNode(0, []float64{1, 0, 0, 0})
	}
	risk := make([]float64, exchanges) // latent illicit pressure per exchange
	truth := make(map[[2]int]float64)

	err = eng.AddQuery(streamgnn.Query{
		Name:      "illicit-flow intensity",
		Anchors:   hubs,
		Delta:     1,
		Threshold: 4,
		Labeler: func(anchor, step int) (float64, bool) {
			v, ok := truth[[2]int{anchor, step}]
			return v, ok
		},
	})
	if err != nil {
		panic(err)
	}

	recent := make([][]int, exchanges)
	for e := range recent {
		recent[e] = []int{hubs[e]}
	}

	for step := 0; step < 35; step++ {
		for e := range risk {
			risk[e] = 0.85*risk[e] + 0.15*rng.Float64()
			if rng.Float64() < 0.05 {
				risk[e] = 0.95 // laundering burst
			}
		}
		// New transactions attach to an exchange's recent activity.
		illicitFlow := make([]float64, exchanges)
		for i := 0; i < 10; i++ {
			e := rng.Intn(exchanges)
			illicit := rng.Float64() < risk[e]
			feat := []float64{0, risk[e], b2f(illicit), rng.Float64()}
			tx := eng.AddNode(1, feat)
			eng.SetNodeLabel(tx, b2f(illicit))
			peer := recent[e][rng.Intn(len(recent[e]))]
			eng.AddEdge(tx, peer, 0)
			if illicit {
				illicitFlow[e] += 1
			}
			recent[e] = append(recent[e], tx)
			if len(recent[e]) > 12 {
				recent[e] = recent[e][1:]
			}
		}
		for e, hub := range hubs {
			eng.SetFeature(hub, []float64{1, risk[e], 0, 0})
			truth[[2]int{hub, step}] = 10 * risk[e] // monitored intensity
			_ = illicitFlow
		}
		if err := eng.Step(); err != nil {
			panic(err)
		}
		for _, a := range eng.TakeAlerts() {
			fmt.Printf("step %2d: exchange %d flagged — predicted intensity %.1f at step %d\n",
				step, a.Anchor, a.Score, a.ForStep)
		}
	}

	m := eng.Metrics()
	fmt.Printf("\ngraph grew to %d nodes / %d live edges; %d predictions, MSE %.2f, AUC %.3f\n",
		eng.NumNodes(), eng.NumEdges(), m.N, m.MSE, m.AUC)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
