// Linkpred: UCI-Messages-style continuous link prediction. Students in a
// few social circles exchange messages; at every step the engine predicts
// which pairs will message next, evaluating itself against the edges that
// actually arrive, while a ROLAND model trains online with the KDE strategy.
//
// Run with:
//
//	go run ./examples/linkpred
package main

import (
	"fmt"
	"math/rand"

	"streamgnn"
)

func main() {
	cfg := streamgnn.DefaultConfig()
	cfg.Model = "ROLAND"
	cfg.Hidden = 12
	cfg.Seed = 5
	cfg.WindowSteps = 6
	eng, err := streamgnn.NewEngine(4, cfg)
	if err != nil {
		panic(err)
	}
	eng.EnableLinkPrediction()

	rng := rand.New(rand.NewSource(5))
	const users = 90
	const circles = 4
	circle := make([]int, users)
	byCircle := make([][]int, circles)
	for u := 0; u < users; u++ {
		c := rng.Intn(circles)
		circle[u] = c
		feat := []float64{0, 0, 0, 1}
		feat[c%3] = 1
		id := eng.AddNode(0, feat)
		byCircle[c] = append(byCircle[c], id)
	}

	for step := 0; step < 30; step++ {
		// Messages: mostly within a circle, sometimes across.
		for i := 0; i < 25; i++ {
			c := rng.Intn(circles)
			if len(byCircle[c]) < 2 {
				continue
			}
			src := byCircle[c][rng.Intn(len(byCircle[c]))]
			dstCircle := c
			if rng.Float64() < 0.15 {
				dstCircle = rng.Intn(circles)
			}
			dst := byCircle[dstCircle][rng.Intn(len(byCircle[dstCircle]))]
			if src != dst {
				eng.AddEdge(src, dst, 0)
			}
		}
		if err := eng.Step(); err != nil {
			panic(err)
		}
		if step%10 == 9 {
			m := eng.Metrics()
			fmt.Printf("step %2d: %d pairs scored — accuracy %.3f  AUC %.3f  MRR %.3f\n",
				step, m.N, m.Accuracy, m.AUC, m.MRR)
		}
	}
	fmt.Printf("\nfinal snapshot: %d users, %d live message edges\n", eng.NumNodes(), eng.NumEdges())
}
