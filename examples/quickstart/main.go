// Quickstart: build a tiny graph stream, subscribe a continuous predictive
// query, and let the engine answer it while training the DGNN online with
// the resource-efficient KDE strategy.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"streamgnn"
)

func main() {
	cfg := streamgnn.DefaultConfig() // TGCN + graph-KDE adaptive training
	cfg.Hidden = 8
	eng, err := streamgnn.NewEngine(2, cfg)
	if err != nil {
		panic(err)
	}

	// A ring of 10 sensors; feature[0] carries each sensor's current load.
	const n = 10
	for i := 0; i < n; i++ {
		eng.AddNode(0, []float64{0, 1})
	}
	for i := 0; i < n; i++ {
		eng.AddUndirectedEdge(i, (i+1)%n, 0)
	}

	// Ground truth the query monitors: sensor 0's load one step ahead.
	rng := rand.New(rand.NewSource(7))
	load := make(map[int]float64) // step -> load of sensor 0
	err = eng.AddQuery(streamgnn.Query{
		Name:      "sensor-0 overload",
		Anchors:   []int{0},
		Delta:     1,
		Threshold: 0.7,
		Labeler: func(anchor, step int) (float64, bool) {
			v, ok := load[step]
			return v, ok
		},
	})
	if err != nil {
		panic(err)
	}

	for step := 0; step < 30; step++ {
		// The stream: sensor loads oscillate; the engine sees them as
		// feature updates and must predict the next step's load.
		cur := 0.5 + 0.45*float64((step/5)%2) + 0.05*rng.Float64()
		load[step] = cur
		eng.SetFeature(0, []float64{cur, 1})
		if err := eng.Step(); err != nil {
			panic(err)
		}
		for _, a := range eng.TakeAlerts() {
			fmt.Printf("step %2d: ALERT %q anchor %d — predicted %.2f for step %d\n",
				step, a.Query, a.Anchor, a.Score, a.ForStep)
		}
	}

	m := eng.Metrics()
	fmt.Printf("\nresolved predictions: %d   MSE: %.4f\n", m.N, m.MSE)
	fmt.Printf("embedding of sensor 0: %.3v\n", eng.Embedding(0))
}
