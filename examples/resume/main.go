// Resume: checkpoint an engine mid-stream and resume in a fresh process.
// The checkpoint carries everything *learned* — model and head parameters,
// recurrent state, the chip distribution — while the graph snapshot itself
// is reconstructed by replaying the stream's events (in a real deployment,
// from the JSONL log; here, from an in-memory event log).
//
// Run with:
//
//	go run ./examples/resume
package main

import (
	"bytes"
	"fmt"
	"math/rand"

	"streamgnn"
)

const n = 12

// apply replays one step's mutations into an engine and records the truth.
func apply(eng *streamgnn.Engine, rng *rand.Rand, truth map[[2]int]float64, step int) {
	act := 0.3 + 0.5*float64((step/4)%2)
	eng.SetFeature(0, []float64{act, 1})
	truth[[2]int{0, step}] = act
	eng.AddEdge(rng.Intn(n), rng.Intn(n), 0)
}

func build(truth map[[2]int]float64) *streamgnn.Engine {
	cfg := streamgnn.DefaultConfig()
	cfg.Hidden = 8
	eng, err := streamgnn.NewEngine(2, cfg)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		eng.AddNode(0, []float64{0, 1})
	}
	for i := 0; i < n; i++ {
		eng.AddUndirectedEdge(i, (i+1)%n, 0)
	}
	err = eng.AddQuery(streamgnn.Query{
		Name: "load", Anchors: []int{0}, Delta: 1, Threshold: 0.9,
		Labeler: func(anchor, step int) (float64, bool) {
			v, ok := truth[[2]int{anchor, step}]
			return v, ok
		},
	})
	if err != nil {
		panic(err)
	}
	return eng
}

func main() {
	truth := make(map[[2]int]float64)

	// Phase 1: run half the stream and checkpoint.
	eng1 := build(truth)
	rng := rand.New(rand.NewSource(21))
	for step := 0; step < 15; step++ {
		apply(eng1, rng, truth, step)
		if err := eng1.Step(); err != nil {
			panic(err)
		}
	}
	var ckpt bytes.Buffer
	if err := eng1.SaveCheckpoint(&ckpt); err != nil {
		panic(err)
	}
	fmt.Printf("checkpointed at step %d (%d bytes); MSE so far %.4f\n",
		eng1.CurrentStep(), ckpt.Len(), eng1.Metrics().MSE)

	// Phase 2: a fresh engine — as if a new process — rebuilds the snapshot
	// by replaying the same mutations (without stepping), loads the
	// checkpoint, and continues the stream where phase 1 stopped.
	eng2 := build(truth)
	rng2 := rand.New(rand.NewSource(21))
	for step := 0; step < 15; step++ {
		apply(eng2, rng2, truth, step) // reconstruct graph mutations only
	}
	if err := eng2.LoadCheckpoint(&ckpt); err != nil {
		panic(err)
	}
	fmt.Printf("resumed at step %d\n", eng2.CurrentStep())
	for step := 15; step < 30; step++ {
		apply(eng2, rng2, truth, step)
		if err := eng2.Step(); err != nil {
			panic(err)
		}
	}
	m := eng2.Metrics()
	fmt.Printf("after resume: step %d, %d predictions resolved, MSE %.4f\n",
		eng2.CurrentStep(), m.N, m.MSE)
}
