package streamgnn

import (
	"bytes"
	"fmt"
	"testing"
)

// shardedPair builds an unsharded incremental engine and a sharded one over
// the same stream config. Both take the incremental path on every non-trained
// step (DirtyFullThreshold 1), so any divergence is the sharded fan-out's.
func shardedPair(t *testing.T, base Config, shards int, layout string) (eFlat, eShard *Engine) {
	t.Helper()
	base.IncrementalForward = true
	base.DirtyFullThreshold = 1

	sh := base
	sh.Shards = shards
	sh.ShardLayout = layout

	var err error
	if eFlat, err = NewEngine(3, base); err != nil {
		t.Fatal(err)
	}
	if eShard, err = NewEngine(3, sh); err != nil {
		t.Fatal(err)
	}
	return eFlat, eShard
}

// runShardedEquality drives both engines through the incStream and asserts
// bit-identical embeddings every step, then identical outcomes and metrics.
func runShardedEquality(t *testing.T, eFlat, eShard *Engine, n, steps int) {
	t.Helper()
	d := incStream{n: n}
	d.init(t, eFlat)
	d.init(t, eShard)
	for s := 0; s < steps; s++ {
		d.mutate(eFlat, s)
		d.mutate(eShard, s)
		if err := eFlat.Step(); err != nil {
			t.Fatal(err)
		}
		if err := eShard.Step(); err != nil {
			t.Fatal(err)
		}
		sameMatrix(t, s, eFlat.lastEmb.Data, eShard.lastEmb.Data)
	}
	o1, o2 := eFlat.Outcomes(), eShard.Outcomes()
	if fmt.Sprintf("%+v", o1) != fmt.Sprintf("%+v", o2) {
		t.Fatal("query outcomes diverged between shard widths")
	}
	m1, m2 := eFlat.Metrics(), eShard.Metrics()
	if fmt.Sprintf("%+v", m1) != fmt.Sprintf("%+v", m2) {
		t.Fatalf("metrics diverged between shard widths:\n  shards=1: %+v\n  sharded:  %+v", m1, m2)
	}
}

// The tentpole guarantee of the sharded pipeline: a seeded 200-step run is
// bit-identical at shards=1 and shards=4 — embeddings at every step, and the
// query outcomes and metrics at the end. WinGNN is memoryless, so this also
// composes with exact incremental inference; training every 25 steps makes
// the equality survive cache invalidation and full-forward rebuilds.
func TestShardedBitEquality200(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = "WinGNN"
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 8
	cfg.Seed = 7
	cfg.Interval = 25

	const n, steps = 80, 200
	eFlat, eShard := shardedPair(t, cfg, 4, "hash")
	runShardedEquality(t, eFlat, eShard, n, steps)

	tele := eShard.Telemetry()
	if tele.Shards != 4 {
		t.Fatalf("Telemetry.Shards = %d, want 4", tele.Shards)
	}
	var occ, rows int64
	for _, v := range tele.ShardNodes {
		occ += v
	}
	for _, v := range tele.ShardSplicedRows {
		rows += v
	}
	if occ != n {
		t.Fatalf("shard occupancy sums to %d, want %d", occ, n)
	}
	if rows == 0 {
		t.Fatal("no rows spliced through the shard fan-out; test proved nothing")
	}
	if tele.CrossShardEdgeFraction <= 0 || tele.CrossShardEdgeFraction > 1 {
		t.Fatalf("CrossShardEdgeFraction = %v, want in (0, 1]", tele.CrossShardEdgeFraction)
	}
	if tele.ShardMerge.Count == 0 {
		t.Fatal("merge-phase histogram recorded nothing")
	}
	if flat := eFlat.Telemetry(); flat.Shards != 0 || flat.ShardNodes != nil {
		t.Fatalf("unsharded engine reports shard telemetry: %+v", flat.Shards)
	}
}

// The same equality for a recurrent model: TGCN's incremental forwards are
// bounded-staleness, but the sharded fan-out must reproduce the unsharded
// incremental run bit for bit — components are forwarded whole, so the
// effective receptive field is identical at any shard width.
func TestShardedBitEqualityRecurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = "TGCN"
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 8
	cfg.Seed = 11
	cfg.Interval = 25

	eFlat, eShard := shardedPair(t, cfg, 4, "hash")
	runShardedEquality(t, eFlat, eShard, 60, 120)
	if eShard.Telemetry().IncrementalForwards == 0 {
		t.Fatal("incremental path never ran")
	}
}

// The range layout partitions contiguous id blocks; equality must hold for
// it exactly as for hash.
func TestShardedBitEqualityRangeLayout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = "WinGNN"
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 8
	cfg.Seed = 5
	cfg.Interval = 20

	eFlat, eShard := shardedPair(t, cfg, 3, "range")
	runShardedEquality(t, eFlat, eShard, 64, 60)
}

// Checkpoint/resume equality under sharding: the v5 checkpoint records the
// partition, and a resumed sharded run must be indistinguishable from an
// uninterrupted one.
func TestCheckpointResumeEqualitySharded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 6
	cfg.Interval = 3
	cfg.IncrementalForward = true
	cfg.DirtyFullThreshold = 1
	cfg.Shards = 4
	resumeEquality(t, cfg)
}

// A sharded checkpoint must not load into an engine with a different
// partition (or none), and vice versa — silently adopting a different shard
// width would change splice ordering guarantees mid-stream.
func TestCheckpointRejectsShardMismatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 8
	cfg.Shards = 4
	e1 := endToEnd(t, cfg, 4)
	var buf bytes.Buffer
	if err := e1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	info, err := PeekCheckpoint(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 4 || info.ShardLayout != "hash" {
		t.Fatalf("peek shards = %d/%q, want 4/hash", info.Shards, info.ShardLayout)
	}

	flat := cfg
	flat.Shards = 0
	eFlat, _ := NewEngine(3, flat)
	if err := eFlat.LoadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("sharded checkpoint accepted by unsharded engine")
	}

	narrower := cfg
	narrower.Shards = 2
	eNarrow, _ := NewEngine(3, narrower)
	if err := eNarrow.LoadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("shards=4 checkpoint accepted by shards=2 engine")
	}

	ranged := cfg
	ranged.ShardLayout = "range"
	eRange, _ := NewEngine(3, ranged)
	if err := eRange.LoadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("hash-layout checkpoint accepted by range-layout engine")
	}

	same, _ := NewEngine(3, cfg)
	const n = 12
	for i := 0; i < n; i++ {
		same.AddNode(0, []float64{float64(i % 2), 0, 1})
	}
	for i := 0; i < n; i++ {
		same.AddUndirectedEdge(i, (i+1)%n, 0)
	}
	if err := same.LoadCheckpoint(bytes.NewReader(data)); err != nil {
		t.Fatalf("matching partition rejected: %v", err)
	}
}

func TestNewEngineShardValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = -1
	if _, err := NewEngine(3, cfg); err == nil {
		t.Fatal("negative Shards accepted")
	}
	cfg = DefaultConfig()
	cfg.Shards = 4
	cfg.ShardLayout = "mod"
	if _, err := NewEngine(3, cfg); err == nil {
		t.Fatal("unknown ShardLayout accepted")
	}
}

// Shards > 1 implies incremental forward inference: without a dirty-region
// path there is nothing to fan out, so fill() switches it on.
func TestShardsImplyIncrementalForward(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = "WinGNN"
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 8
	cfg.Interval = 1000
	cfg.Shards = 4
	cfg.DirtyFullThreshold = 1

	d := incStream{n: 30}
	e, err := NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.init(t, e)
	for s := 0; s < 6; s++ {
		d.mutate(e, s)
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Telemetry().IncrementalForwards == 0 {
		t.Fatal("Shards=4 did not enable the incremental forward path")
	}
}
