package streamgnn

import (
	"math/rand"
	"sync"
	"testing"

	"streamgnn/internal/query"
)

// mixedRequests builds a deterministic request batch covering every kind plus
// the rejection paths (out-of-range anchors and an unknown kind), so the
// batched scatter has holes to route around.
func mixedRequests(rng *rand.Rand, rows, count int) []query.Request {
	reqs := make([]query.Request, count)
	for i := range reqs {
		switch rng.Intn(5) {
		case 0:
			reqs[i] = query.Request{Kind: query.KindEvent, Anchor: rng.Intn(rows)}
		case 1, 2:
			reqs[i] = query.Request{Kind: query.KindLink, Src: rng.Intn(rows), Dst: rng.Intn(rows)}
		case 3:
			reqs[i] = query.Request{Kind: query.KindEvent, Anchor: rows + rng.Intn(5)}
		default:
			reqs[i] = query.Request{Kind: query.KindDensity, Node: rng.Intn(rows)}
		}
	}
	reqs[0] = query.Request{Kind: "bogus"}
	return reqs
}

// The batched answer path must be bit-identical to answering each query alone,
// for every model kind and across batch sizes — the invariant that lets the
// server batch aggressively without changing any answer.
func TestBatchedAnswersBitEqualSerial(t *testing.T) {
	for _, name := range ModelNames() {
		cfg := DefaultConfig()
		cfg.Model = name
		cfg.Hidden = 6
		e := endToEnd(t, cfg, 6)
		snap := e.QuerySnapshot()
		if snap == nil {
			t.Fatalf("%s: no snapshot after stepping", name)
		}
		if snap.Step() != e.CurrentStep()-1 {
			t.Fatalf("%s: snapshot step %d, engine step %d", name, snap.Step(), e.CurrentStep())
		}
		density := make([]float64, snap.Rows())
		for i := range density {
			density[i] = float64(i) * 0.25
		}
		rng := rand.New(rand.NewSource(42))
		for _, batch := range []int{1, 7, 64} {
			reqs := mixedRequests(rng, snap.Rows(), batch)
			batched := snap.Answer(reqs, density)
			for i := range reqs {
				serial := snap.Answer(reqs[i:i+1], density)[0]
				if serial != batched[i] {
					t.Fatalf("%s batch=%d query %d (%+v): batched %+v != serial %+v",
						name, batch, i, reqs[i], batched[i], serial)
				}
			}
		}
	}
}

func TestQuerySnapshotNilBeforeFirstStep(t *testing.T) {
	e, err := NewEngine(2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.QuerySnapshot() != nil {
		t.Fatal("snapshot exists before any step")
	}
}

// A held snapshot must answer bit-identically while the engine keeps stepping
// — the no-lock serving claim. Run with -race: the step loop (splicing,
// training, invalidating) and the serving reader share only the published
// matrix, and any in-place write to it is a data race.
func TestSnapshotStableUnderConcurrentSteps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 6
	cfg.Interval = 2 // exercise both the splice and the invalidate paths
	e := endToEnd(t, cfg, 4)
	snap := e.QuerySnapshot()
	rng := rand.New(rand.NewSource(5))
	reqs := mixedRequests(rng, snap.Rows(), 32)
	want := snap.Answer(reqs, nil)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the step loop: the only goroutine mutating the engine
		defer wg.Done()
		defer close(done)
		for s := 0; s < 12; s++ {
			e.AddEdge(rng.Intn(e.NumNodes()), rng.Intn(e.NumNodes()), 0)
			if err := e.Step(); err != nil {
				t.Errorf("step: %v", err)
				return
			}
		}
	}()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		got := snap.Answer(reqs, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("held snapshot's answer %d drifted: %+v != %+v", i, got[i], want[i])
				alive = false
				break
			}
		}
	}
	wg.Wait()
	if fresh := e.QuerySnapshot(); fresh == snap || fresh.Step() <= snap.Step() {
		t.Fatal("engine did not publish fresh snapshots while stepping")
	}
}

func TestSeedWindowDensity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKDE
	cfg.Hidden = 6
	e := endToEnd(t, cfg, 6)
	d, err := e.SeedWindowDensity()
	if err != nil {
		t.Fatalf("kde engine density: %v", err)
	}
	if len(d) != e.NumNodes() {
		t.Fatalf("density len %d, nodes %d", len(d), e.NumNodes())
	}
	for i, v := range d {
		if v < 0 {
			t.Fatalf("negative density at %d: %v", i, v)
		}
	}
	// The density vector is what KindDensity answers serve.
	snap := e.QuerySnapshot()
	ans := snap.Answer([]query.Request{{Kind: query.KindDensity, Node: 3}}, d)
	if !ans[0].OK || ans[0].Score != d[3] {
		t.Fatalf("density answer %+v, want score %v", ans[0], d[3])
	}
	// Without a vector, density queries fail cleanly.
	if a := snap.Answer([]query.Request{{Kind: query.KindDensity}}, nil)[0]; a.OK || a.Err == "" {
		t.Fatalf("nil density accepted: %+v", a)
	}

	// Strategies without a KDE seed window refuse.
	cfg2 := DefaultConfig()
	cfg2.Strategy = StrategyFull
	cfg2.Hidden = 6
	if _, err := endToEnd(t, cfg2, 2).SeedWindowDensity(); err == nil {
		t.Fatal("full strategy returned a seed-window density")
	}
}
