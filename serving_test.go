package streamgnn

import (
	"math/rand"
	"sync"
	"testing"

	"streamgnn/internal/query"
)

// mixedRequests builds a deterministic request batch covering every kind plus
// the rejection paths (out-of-range anchors and an unknown kind), so the
// batched scatter has holes to route around.
func mixedRequests(rng *rand.Rand, rows, count int) []query.Request {
	reqs := make([]query.Request, count)
	for i := range reqs {
		switch rng.Intn(5) {
		case 0:
			reqs[i] = query.Request{Kind: query.KindEvent, Anchor: rng.Intn(rows)}
		case 1, 2:
			reqs[i] = query.Request{Kind: query.KindLink, Src: rng.Intn(rows), Dst: rng.Intn(rows)}
		case 3:
			reqs[i] = query.Request{Kind: query.KindEvent, Anchor: rows + rng.Intn(5)}
		default:
			reqs[i] = query.Request{Kind: query.KindDensity, Node: rng.Intn(rows)}
		}
	}
	reqs[0] = query.Request{Kind: "bogus"}
	return reqs
}

// The batched answer path must be bit-identical to answering each query alone,
// for every model kind and across batch sizes — the invariant that lets the
// server batch aggressively without changing any answer.
func TestBatchedAnswersBitEqualSerial(t *testing.T) {
	for _, name := range ModelNames() {
		cfg := DefaultConfig()
		cfg.Model = name
		cfg.Hidden = 6
		e := endToEnd(t, cfg, 6)
		snap := e.QuerySnapshot()
		if snap == nil {
			t.Fatalf("%s: no snapshot after stepping", name)
		}
		if snap.Step() != e.CurrentStep()-1 {
			t.Fatalf("%s: snapshot step %d, engine step %d", name, snap.Step(), e.CurrentStep())
		}
		density := make([]float64, snap.Rows())
		for i := range density {
			density[i] = float64(i) * 0.25
		}
		rng := rand.New(rand.NewSource(42))
		for _, batch := range []int{1, 7, 64} {
			reqs := mixedRequests(rng, snap.Rows(), batch)
			batched := snap.Answer(reqs, density)
			for i := range reqs {
				serial := snap.Answer(reqs[i:i+1], density)[0]
				if serial != batched[i] {
					t.Fatalf("%s batch=%d query %d (%+v): batched %+v != serial %+v",
						name, batch, i, reqs[i], batched[i], serial)
				}
			}
		}
	}
}

func TestQuerySnapshotNilBeforeFirstStep(t *testing.T) {
	e, err := NewEngine(2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.QuerySnapshot() != nil {
		t.Fatal("snapshot exists before any step")
	}
}

// A held snapshot must answer bit-identically while the engine keeps stepping
// — the no-lock serving claim. Run with -race: the step loop (splicing,
// training, invalidating) and the serving reader share only the published
// matrix, and any in-place write to it is a data race.
func TestSnapshotStableUnderConcurrentSteps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 6
	cfg.Interval = 2 // exercise both the splice and the invalidate paths
	e := endToEnd(t, cfg, 4)
	snap := e.QuerySnapshot()
	rng := rand.New(rand.NewSource(5))
	reqs := mixedRequests(rng, snap.Rows(), 32)
	want := snap.Answer(reqs, nil)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the step loop: the only goroutine mutating the engine
		defer wg.Done()
		defer close(done)
		for s := 0; s < 12; s++ {
			e.AddEdge(rng.Intn(e.NumNodes()), rng.Intn(e.NumNodes()), 0)
			if err := e.Step(); err != nil {
				t.Errorf("step: %v", err)
				return
			}
		}
	}()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		got := snap.Answer(reqs, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("held snapshot's answer %d drifted: %+v != %+v", i, got[i], want[i])
				alive = false
				break
			}
		}
	}
	wg.Wait()
	if fresh := e.QuerySnapshot(); fresh == snap || fresh.Step() <= snap.Step() {
		t.Fatal("engine did not publish fresh snapshots while stepping")
	}
}

func TestSeedWindowDensity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKDE
	cfg.Hidden = 6
	e := endToEnd(t, cfg, 6)
	d, err := e.SeedWindowDensity()
	if err != nil {
		t.Fatalf("kde engine density: %v", err)
	}
	if len(d) != e.NumNodes() {
		t.Fatalf("density len %d, nodes %d", len(d), e.NumNodes())
	}
	for i, v := range d {
		if v < 0 {
			t.Fatalf("negative density at %d: %v", i, v)
		}
	}
	// The density vector is what KindDensity answers serve.
	snap := e.QuerySnapshot()
	ans := snap.Answer([]query.Request{{Kind: query.KindDensity, Node: 3}}, d)
	if !ans[0].OK || ans[0].Score != d[3] {
		t.Fatalf("density answer %+v, want score %v", ans[0], d[3])
	}
	// Without a vector, density queries fail cleanly.
	if a := snap.Answer([]query.Request{{Kind: query.KindDensity}}, nil)[0]; a.OK || a.Err == "" {
		t.Fatalf("nil density accepted: %+v", a)
	}

	// Strategies without a KDE seed window refuse — on the engine and on the
	// snapshot alike.
	cfg2 := DefaultConfig()
	cfg2.Strategy = StrategyFull
	cfg2.Hidden = 6
	e2 := endToEnd(t, cfg2, 2)
	if _, err := e2.SeedWindowDensity(); err == nil {
		t.Fatal("full strategy returned a seed-window density")
	}
	if _, err := e2.QuerySnapshot().Density(); err == nil {
		t.Fatal("full strategy's snapshot returned a density")
	}
}

// The snapshot's lazily evaluated density must be bit-identical to the
// engine's live SeedWindowDensity when nothing stepped in between: both walk
// the same seed window, chip weights and adjacency in the same accumulation
// order.
func TestSnapshotDensityMatchesSeedWindowDensity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKDE
	cfg.Hidden = 6
	e := endToEnd(t, cfg, 6)
	want, err := e.SeedWindowDensity()
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.QuerySnapshot().Density()
	if err != nil {
		t.Fatal(err)
	}
	sameMatrix(t, e.CurrentStep(), want, got)
	// A density answer off the snapshot serves exactly this vector.
	snap := e.QuerySnapshot()
	ans := snap.Answer([]query.Request{{Kind: query.KindDensity, Node: 2}}, got)
	if !ans[0].OK || ans[0].Score != want[2] {
		t.Fatalf("density answer %+v, want score %v", ans[0], want[2])
	}
	// Mutating and stepping publishes a fresh capture; the held snapshot's
	// vector does not move.
	e.AddEdge(0, 7, 0)
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	again, err := snap.Density()
	if err != nil {
		t.Fatal(err)
	}
	sameMatrix(t, e.CurrentStep(), want, again)
}

// A held snapshot must keep answering density queries bit-identically while
// the engine steps and mutates the graph — run with -race: the stepper
// rebuilds the walk adjacency and rotates the seed window, and the reader
// evaluates the captured ones, so any sharing of mutable state is a data
// race. This is the regression test for density queries acquiring the engine
// step lock: the reader never touches the engine, only the snapshot.
func TestDensityStableUnderConcurrentSteps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKDE
	cfg.Hidden = 6
	cfg.Interval = 2
	e := endToEnd(t, cfg, 4)
	snap := e.QuerySnapshot()
	want, err := snap.Density()
	if err != nil {
		t.Fatal(err)
	}
	reqs := []query.Request{{Kind: query.KindDensity, Node: 1}, {Kind: query.KindDensity, Node: 9}}
	wantAns := snap.Answer(reqs, want)

	rng := rand.New(rand.NewSource(5))
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the step loop: the only goroutine mutating the engine
		defer wg.Done()
		defer close(done)
		for s := 0; s < 12; s++ {
			e.AddEdge(rng.Intn(e.NumNodes()), rng.Intn(e.NumNodes()), 0)
			if err := e.Step(); err != nil {
				t.Errorf("step: %v", err)
				return
			}
		}
	}()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		got, err := snap.Density()
		if err != nil {
			t.Errorf("held snapshot's density failed: %v", err)
			break
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("held snapshot's density[%d] drifted: %v != %v", i, got[i], want[i])
				alive = false
				break
			}
		}
		gotAns := snap.Answer(reqs, got)
		for i := range wantAns {
			if gotAns[i] != wantAns[i] {
				t.Errorf("held snapshot's density answer %d drifted: %+v != %+v", i, gotAns[i], wantAns[i])
				alive = false
				break
			}
		}
		// Fresh snapshots evaluate their own captures concurrently with the
		// stepper — lock-free for every query kind.
		if fresh := e.QuerySnapshot(); fresh != nil {
			if _, err := fresh.Density(); err != nil {
				t.Errorf("fresh snapshot's density failed: %v", err)
				alive = false
			}
		}
	}
	wg.Wait()
	if fresh := e.QuerySnapshot(); fresh == snap || fresh.Step() <= snap.Step() {
		t.Fatal("engine did not publish fresh snapshots while stepping")
	}
}
