package streamgnn

import (
	"fmt"
	"sync"

	"streamgnn/internal/core"
	"streamgnn/internal/kde"
	"streamgnn/internal/query"
	"streamgnn/internal/tensor"
)

// This file is the engine side of batched query serving: at the end of every
// Step the engine publishes an immutable QuerySnapshot — the step's embedding
// matrix (copy-on-write, via EmbStore.Publish) plus a value clone of the
// prediction heads — through an atomic pointer. Any number of serving
// goroutines then answer query batches against the snapshot with zero locks
// while the step loop keeps ingesting and training; the snapshot's matrix and
// heads are never mutated after publication, so readers see bit-identical
// rows for as long as they hold it. See DESIGN.md §13.

// QuerySnapshot is an immutable view of the engine's serving state as of one
// completed step. Snapshots are safe for concurrent use and stay valid (and
// bit-stable) after the engine moves on; holding one only pins its matrix in
// memory.
type QuerySnapshot struct {
	step  int
	emb   *tensor.Matrix
	heads *query.Heads

	// Density capture: the KDE seed window, its chip weights, the frozen
	// walk adjacency and the stop probability as of this step. The density
	// vector itself is evaluated lazily, at most once, on first demand —
	// most batches carry no density query, and the capture (two small slice
	// copies plus a cached CSR pointer) is cheap enough to do every step.
	// densityErr records a capture-time condition (no adaptive scheduler,
	// empty seed window) and makes Density fail exactly like
	// SeedWindowDensity would have.
	walkAdj     *tensor.CSR
	seeds       []int
	seedWeights []float64
	stopProb    float64
	densityErr  error

	densityOnce sync.Once
	density     []float64
	densityEval error
}

// Step returns the stream step the snapshot's embeddings were computed at.
func (s *QuerySnapshot) Step() int { return s.step }

// Rows returns the number of node rows the snapshot can answer about.
func (s *QuerySnapshot) Rows() int {
	if s.emb == nil {
		return 0
	}
	return s.emb.Rows
}

// Emb exposes the snapshot's embedding matrix. It is immutable after
// publication; callers must treat it as read-only. The cluster coordinator
// reads it to push changed rows to replica serving mirrors.
func (s *QuerySnapshot) Emb() *tensor.Matrix { return s.emb }

// Heads exposes the snapshot's prediction heads — a value clone frozen at
// publication, safe to read (never mutate) from any goroutine.
func (s *QuerySnapshot) Heads() *query.Heads { return s.heads }

// Answer evaluates a batch of predictive queries against the snapshot:
// one stacked head application per task kind instead of one per query, with
// answers in request order, bit-identical to answering each query alone (see
// query.AnswerBatch). density is the shared seed-window density vector for
// KindDensity requests (from Density; nil disables them). Safe to call from
// any number of goroutines concurrently with Engine.Step.
//
//streamlint:lockfree
func (s *QuerySnapshot) Answer(reqs []query.Request, density []float64) []query.Answer {
	return query.AnswerBatch(s.heads, s.emb, reqs, density)
}

// Density returns the KDE seed-window density vector as of the snapshot's
// step — the quantity KindDensity queries serve — evaluating it lazily on
// first call and sharing the result across callers. Unlike
// Engine.SeedWindowDensity it reads only state frozen at publication (the
// seed window, chip weights and walk adjacency captured by the step), so it
// is safe from any goroutine concurrently with Engine.Step and never touches
// the engine's step lock. Errors mirror SeedWindowDensity's: no adaptive
// scheduler at capture time, or an empty seed window.
//
//streamlint:lockfree
func (s *QuerySnapshot) Density() ([]float64, error) {
	if s.densityErr != nil {
		return nil, s.densityErr
	}
	s.densityOnce.Do(func() {
		s.density, s.densityEval = kde.GraphKDEDensityCSR(s.walkAdj, s.seeds, s.seedWeights, s.stopProb, 64, 1e-9)
	})
	return s.density, s.densityEval
}

// QuerySnapshot returns the serving snapshot published by the most recent
// Step, or nil before the first one. The load is atomic: safe to call from
// serving goroutines while the engine steps.
func (e *Engine) QuerySnapshot() *QuerySnapshot {
	return e.serving.Load()
}

// publishServing installs the post-step serving snapshot. The embedding
// matrix is published copy-on-write when it is the incremental store's live
// matrix (the next in-place splice clones first); in every other case —
// full-forward outputs, matrices the store just dropped via Invalidate — the
// matrix is already never mutated again. Heads are value-cloned so training's
// in-place parameter updates never race a reader's forward.
func (e *Engine) publishServing(step int) {
	if e.lastEmb == nil {
		return
	}
	m := e.lastEmb
	if e.emb.Valid() && e.emb.Matrix() == m {
		m = e.emb.Publish()
	}
	snap := &QuerySnapshot{step: step, emb: m, heads: e.wl.Heads().Clone(), stopProb: e.ccfg.StopProb}
	seeds, weights, err := e.densityInputs()
	if err != nil {
		snap.densityErr = err
	} else {
		// WalkAdj is rebuilt fresh on change and never mutated after being
		// returned, so the captured pointer stays frozen at this step's
		// topology while the live graph moves on.
		snap.walkAdj = e.g.WalkAdj()
		snap.seeds, snap.seedWeights = seeds, weights
	}
	e.serving.Store(snap)
}

// densityInputs gathers the current KDE seed window and its effective chip
// weights (uniform fallback when every seed chip is inactive), the inputs
// both SeedWindowDensity and the per-step snapshot capture evaluate the
// density from. Errors when the adaptive scheduler or its KDE sampler is not
// running.
func (e *Engine) densityInputs() (seeds []int, weights []float64, err error) {
	if e.sched == nil || e.sched.Adaptive == nil {
		return nil, nil, fmt.Errorf("streamgnn: no adaptive scheduler (strategy %q, or no Step yet)", e.cfg.Strategy)
	}
	ks, ok := e.sched.Adaptive.Sampler().(*core.KDESampler)
	if !ok {
		return nil, nil, fmt.Errorf("streamgnn: strategy %q has no KDE seed window", e.cfg.Strategy)
	}
	seeds = ks.Seeds()
	if len(seeds) == 0 {
		return nil, nil, fmt.Errorf("streamgnn: empty KDE seed window")
	}
	weights = make([]float64, len(seeds))
	var total float64
	for i, s := range seeds {
		weights[i] = e.sched.Adaptive.Chips.EffectiveWeight(s)
		total += weights[i]
	}
	if total <= 0 {
		// All seed chips currently inactive: fall back to uniform kernels
		// rather than failing the density query.
		for i := range weights {
			weights[i] = 1
		}
	}
	return seeds, weights, nil
}

// SeedWindowDensity evaluates the graph-KDE sampling density over all nodes
// from the current seed window, weighted by the learned chip weights — the
// quantity KindDensity queries serve. One evaluation is shared by a whole
// query batch. It reads the live graph and scheduler, so unlike
// QuerySnapshot.Answer it must be called between Step calls (or under the
// caller's step lock). Errors when the adaptive scheduler or its KDE sampler
// is not running (strategy "full" or "weighted", or before the first Step).
// Serving paths should prefer QuerySnapshot.Density, which evaluates the
// same vector from state frozen at publication and needs no lock.
func (e *Engine) SeedWindowDensity() ([]float64, error) {
	seeds, weights, err := e.densityInputs()
	if err != nil {
		return nil, err
	}
	return kde.GraphKDEDensity(e.g, seeds, weights, e.ccfg.StopProb, 64, 1e-9)
}
