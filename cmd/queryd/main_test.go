package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streamgnn"
	"streamgnn/internal/cluster"
	"streamgnn/internal/query"
	"streamgnn/internal/serve"
	"streamgnn/internal/stream"
	"streamgnn/internal/workload"
)

func testEngine(t *testing.T) *streamgnn.Engine {
	t.Helper()
	eng, err := streamgnn.NewEngine(2, streamgnn.Config{Model: "TGCN", Strategy: "full", Hidden: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := eng.Graph()
	for i := 0; i < 4; i++ {
		g.AddNode(0, []float64{float64(i), 1})
	}
	for i := 0; i < 4; i++ {
		g.AddEdge(i, (i+1)%4, 0, 0)
	}
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// Shutdown must drain the /query admission queue BEFORE writing the final
// checkpoint: a checkpoint captured while micro-batches are still in flight
// could be staler than answers the service already gave. The test holds a
// batch in flight, starts shutdown, and asserts the checkpoint file does not
// appear until the batch is released.
func TestShutdownDrainsBatcherBeforeCheckpoint(t *testing.T) {
	srv := &server{eng: testEngine(t), dataset: "test", started: time.Now()}
	release := make(chan struct{})
	srv.batcher = serve.NewBatcher(serve.Config{MaxBatch: 1}, func(reqs []query.Request) []query.Answer {
		<-release
		return make([]query.Answer, len(reqs))
	})

	submitted := make(chan struct{})
	go func() {
		srv.batcher.Submit([]query.Request{{Kind: query.KindEvent, Anchor: 0}})
		close(submitted)
	}()
	// Wait until the batch is admitted and its answerer is blocked.
	deadline := time.Now().Add(5 * time.Second)
	for srv.batcher.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query batch never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	path := filepath.Join(t.TempDir(), "queryd.ckpt")
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.shutdown(path) }()

	// With the batch still in flight, shutdown must be blocked in
	// batcher.Close() and the checkpoint must not exist yet. (The buggy
	// order — checkpoint first, Close after — writes the file here.)
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned (%v) while a query batch was still in flight", err)
	default:
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatal("checkpoint written before the admission queue drained")
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatal(err)
	}
	<-submitted
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("checkpoint missing after shutdown: %v", err)
	}
	if _, err := streamgnn.PeekCheckpoint(bytes.NewReader(data)); err != nil {
		t.Fatalf("shutdown checkpoint unreadable: %v", err)
	}
}

// shutdown with no checkpoint path still drains the queue and is idempotent
// with the deferred safety-net Close.
func TestShutdownWithoutCheckpoint(t *testing.T) {
	srv := &server{eng: testEngine(t), dataset: "test", started: time.Now()}
	srv.batcher = serve.NewBatcher(serve.Config{MaxBatch: 1}, srv.answerBatch)
	if err := srv.shutdown(""); err != nil {
		t.Fatal(err)
	}
	if got := srv.batcher.Submit([]query.Request{{Kind: query.KindEvent, Anchor: 0}}); got != nil {
		t.Fatal("batcher accepted a query after shutdown")
	}
	srv.batcher.Close() // the deferred safety net must not panic
}

// The -peers list parser drives shard addressing; whitespace and empty
// segments must not produce phantom replicas.
func TestPeerList(t *testing.T) {
	o := options{peers: " http://a:1 , http://b:2,,http://c:3 "}
	got := o.peerList()
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if len(got) != len(want) {
		t.Fatalf("peerList = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("peerList[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if (options{}).peerList() != nil {
		t.Fatal("empty -peers should parse to no replicas")
	}
}

// End-to-end check of the coordinator wiring queryd assembles: the
// routingSource replicates every stream batch, afterStep publishes each
// completed step, and both coordinator and replica metrics render. Uses
// in-process loopback transports so the test needs no sockets.
func TestCoordinatorWiringRoutesAndPublishes(t *testing.T) {
	d, err := workload.ByName("Bitcoin", workload.GenConfig{Seed: 1, Steps: 12})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := streamgnn.NewEngine(d.FeatDim, streamgnn.Config{
		Model: "TGCN", Strategy: "full", Hidden: 4, Seed: 1,
		WindowSteps: d.WindowSteps, IncrementalForward: true, Shards: 2,
		// Space training out so steps between training rounds take the
		// sharded incremental-forward path — that's what fans out.
		Interval: 6, DirtyFullThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	reps := []*cluster.Replica{cluster.NewReplica(), cluster.NewReplica()}
	coord, err := cluster.NewCoordinator(eng, []cluster.Transport{
		&cluster.Loopback{R: reps[0]}, &cluster.Loopback{R: reps[1]},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Mirror run()'s assembly: routed source, afterStep publish hook.
	routed := &routingSource{src: d.Source(), coord: coord}
	rep := stream.NewReplayer(eng.Graph(), routed, 0)
	srv := &server{eng: eng, dataset: d.Name, started: time.Now()}
	srv.afterStep = func() {
		if snap := eng.QuerySnapshot(); snap != nil {
			coord.PublishStep(snap.Step())
		}
	}
	interrupted, err := srv.replay(context.Background(), rep, 0)
	if err != nil || interrupted {
		t.Fatalf("replay: interrupted=%v err=%v", interrupted, err)
	}
	if routed.err != nil {
		t.Fatalf("event routing failed: %v", routed.err)
	}
	for i, r := range reps {
		st := r.Stats()
		if st.Publishes == 0 || st.Forwards == 0 {
			t.Fatalf("replica %d never exercised: %+v", i, st)
		}
		if got := r.LastApplied(); got != d.Steps-1 {
			t.Fatalf("replica %d graph mirror at step %d, want %d", i, got, d.Steps-1)
		}
	}

	var b bytes.Buffer
	coord.WriteMetrics(&b)
	if !strings.Contains(b.String(), "streamgnn_cluster_replicas") {
		t.Fatal("coordinator metrics missing streamgnn_cluster_ family")
	}
	b.Reset()
	writeReplicaMetrics(&b, reps[0])
	if !strings.Contains(b.String(), "streamgnn_cluster_replica_last_applied_step") {
		t.Fatal("replica metrics missing streamgnn_cluster_replica_ family")
	}
}
