// Command queryd is a long-running continuous-monitoring service: it replays
// a graph stream through the engine — one of the built-in workloads, or any
// external stream in the JSONL event encoding (see cmd/streamgen) — answers
// its continuous predictive queries at every step, trains the chosen DGNN
// online with the chosen strategy, and prints alerts, drift warnings and
// rolling metrics — the operational loop of the paper's Figure 2.
//
// Beyond the replay loop it behaves like a real service: an optional admin
// listener serves liveness, stats and Prometheus metrics; SIGINT/SIGTERM
// trigger a graceful shutdown that writes a checkpoint, and -resume restores
// it so the run continues exactly where it stopped.
//
//	queryd -dataset Bitcoin -model TGCN -strategy kde -steps 60
//	queryd -input mystream.jsonl -model ROLAND       # external data
//	queryd -listen :8080 -checkpoint queryd.ckpt     # service mode
//	queryd -checkpoint queryd.ckpt -resume           # continue after restart
//	queryd -role=replica -listen :9201 -replica-id 0 # shard-replica service
//	queryd -role=coordinator -shards 2 -peers http://127.0.0.1:9201,http://127.0.0.1:9202
//
// Cluster mode (DESIGN.md §17) splits the single process into a coordinator
// (the engine, stream replay and training) and one replica service per
// shard: replicas mirror the graph from replicated event batches, execute
// their shard's forward part, and serve fanned-out /query slices from a
// published snapshot — bit-identical to the in-process -shards run.
//
// Admin endpoints (with -listen):
//
//	GET  /healthz  liveness probe ("ok")
//	GET  /stats    JSON snapshot: progress, Stats, Metrics, Telemetry
//	GET  /metrics  Prometheus text format (step/phase latency histograms,
//	               training and cache counters, workload quality gauges,
//	               query-serving latency/batch-size/queue-depth)
//	POST /query    batched predictive-query serving: a JSON batch of event /
//	               link / density queries, answered against the latest
//	               completed step's immutable snapshot through the
//	               micro-batching admission queue (-batch-max / -batch-wait);
//	               see README "Serving"
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"streamgnn"
	"streamgnn/internal/cluster"
	"streamgnn/internal/obs"
	"streamgnn/internal/query"
	"streamgnn/internal/serve"
	"streamgnn/internal/stream"
	"streamgnn/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "Bitcoin", "workload: "+strings.Join(workload.Names(), ", "))
	input := flag.String("input", "", "replay an external JSONL event stream instead of a built-in workload")
	model := flag.String("model", "TGCN", "DGNN baseline")
	strategy := flag.String("strategy", "kde", "training strategy: full, weighted, kde")
	steps := flag.Int("steps", 60, "stream steps to replay")
	seed := flag.Int64("seed", 1, "random seed")
	hidden := flag.Int("hidden", 16, "embedding dimension")
	detectDrift := flag.Bool("drift", true, "print drift warnings (Page-Hinkley over query loss)")
	listen := flag.String("listen", "", "admin listen address (e.g. :8080); empty disables the HTTP endpoints")
	ckptPath := flag.String("checkpoint", "", "checkpoint file written on graceful shutdown (and read by -resume)")
	resume := flag.Bool("resume", false, "resume from -checkpoint: replay the stream up to the saved step, then continue")
	rate := flag.Float64("rate", 0, "max replay steps per second; 0 replays at full speed")
	incremental := flag.Bool("incremental", false, "dirty-region incremental forward inference (see DESIGN.md §10)")
	refreshEvery := flag.Int("refresh-every", 0, "with -incremental: force a full forward every N steps (0 = never)")
	dirtyThreshold := flag.Float64("dirty-threshold", 0, "with -incremental: compute-region fraction in [0,1] above which a step falls back to a full forward (0 = engine default of 0.25, 1 never falls back)")
	delta := flag.Bool("delta", false, "event-driven delta-propagation forward instead of region splicing (implies -incremental; see DESIGN.md §14)")
	deltaEps := flag.Float64("delta-eps", 0, "with -delta: per-component pruning threshold in [0,1]; 0 keeps delta forwards bit-identical to full forwards")
	depSchedule := flag.Bool("dep-schedule", false, "conflict-group scheduling of the training apply phase: backprop and gradient accumulation run concurrently across dependency-free partition groups (see DESIGN.md §15)")
	interval := flag.Int("interval", 0, "steps between training steps (0 = engine default of 1; raise so -incremental can reuse cached embeddings between training steps)")
	kernelWorkers := flag.Int("kernel-workers", 0, "tensor-kernel parallelism (0 = serial, negative = NumCPU)")
	shards := flag.Int("shards", 0, "partition the node space into this many shards and fan incremental forwards out per shard (0/1 = unsharded; >1 implies -incremental; see DESIGN.md §12)")
	shardLayout := flag.String("shard-layout", "hash", "node-to-shard layout with -shards: hash or range")
	batchMax := flag.Int("batch-max", 64, "B: flush a /query micro-batch as soon as this many queries are pending")
	batchWait := flag.Duration("batch-wait", 2*time.Millisecond, "T: flush a /query micro-batch this long after its first query")
	role := flag.String("role", "", "cluster role: coordinator or replica; empty runs the single-process service (see DESIGN.md §17)")
	peers := flag.String("peers", "", "with -role=coordinator: comma-separated replica base URLs, one per shard in shard order (e.g. http://127.0.0.1:9201,http://127.0.0.1:9202)")
	replicaID := flag.Int("replica-id", -1, "with -role=replica: pin the shard index this replica serves; -1 accepts the coordinator's assignment")
	wal := flag.String("wal", "", "with -role=replica: write-ahead log of applied event batches, replayed on -resume to rebuild the graph mirror")
	flag.Parse()

	opts := options{
		dataset: *dataset, input: *input, model: *model, strategy: *strategy,
		steps: *steps, seed: *seed, hidden: *hidden, drift: *detectDrift,
		listen: *listen, ckptPath: *ckptPath, resume: *resume, rate: *rate,
		incremental: *incremental, refreshEvery: *refreshEvery,
		dirtyThreshold: *dirtyThreshold,
		delta:          *delta, deltaEps: *deltaEps,
		depSchedule: *depSchedule,
		interval:    *interval, kernelWorkers: *kernelWorkers,
		shards: *shards, shardLayout: *shardLayout,
		batchMax: *batchMax, batchWait: *batchWait,
		role: *role, peers: *peers, replicaID: *replicaID, walPath: *wal,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "queryd:", err)
		os.Exit(1)
	}
}

type options struct {
	dataset, input, model, strategy string
	steps                           int
	seed                            int64
	hidden                          int
	drift                           bool
	listen                          string
	ckptPath                        string
	resume                          bool
	rate                            float64
	incremental                     bool
	refreshEvery                    int
	dirtyThreshold                  float64
	delta                           bool
	deltaEps                        float64
	depSchedule                     bool
	interval                        int
	kernelWorkers                   int
	shards                          int
	shardLayout                     string
	batchMax                        int
	batchWait                       time.Duration
	role                            string
	peers                           string
	replicaID                       int
	walPath                         string
}

func run(opts options) error {
	switch opts.role {
	case "":
		// Single-process service.
	case "replica":
		return runReplica(opts)
	case "coordinator":
		// Falls through to the normal service loop; the coordinator is
		// wired in below, after the engine exists.
	default:
		return fmt.Errorf("unknown -role %q (want coordinator or replica)", opts.role)
	}

	// A resume run must build an engine compatible with the checkpoint, so
	// the saved header overrides the model/strategy/hidden flags.
	var ckptData []byte
	resumeStep := 0
	if opts.resume {
		if opts.ckptPath == "" {
			return errors.New("-resume requires -checkpoint")
		}
		var err error
		ckptData, err = os.ReadFile(opts.ckptPath)
		if err != nil {
			return err
		}
		info, err := streamgnn.PeekCheckpoint(bytes.NewReader(ckptData))
		if err != nil {
			return err
		}
		opts.model, opts.strategy, opts.hidden = info.Model, info.Strategy, info.Hidden
		if info.Shards > 0 {
			// Adopt the saved shard layout: LoadCheckpoint rejects a
			// mismatched partition, so the flags must not override it.
			opts.shards, opts.shardLayout = info.Shards, info.ShardLayout
			if opts.shards <= 1 {
				opts.shardLayout = "hash"
			}
		}
		resumeStep = info.Step
		fmt.Printf("resuming %s/%s at step %d from %s\n", info.Model, info.Strategy, info.Step, opts.ckptPath)
	}

	// Coordinator mode: one replica per shard, addressed in shard order.
	// -shards may be omitted (it follows the peer count) but must agree with
	// it when given — and with the checkpoint's partition on resume.
	var peerURLs []string
	if opts.role == "coordinator" {
		peerURLs = opts.peerList()
		if len(peerURLs) == 0 {
			return errors.New("-role=coordinator requires -peers")
		}
		if opts.shards == 0 {
			opts.shards = len(peerURLs)
		}
		if opts.shards != len(peerURLs) {
			return fmt.Errorf("partition has %d shards but -peers names %d replicas", opts.shards, len(peerURLs))
		}
		if opts.shards < 2 {
			return errors.New("coordinator mode needs at least 2 replicas (one per shard)")
		}
	}

	ds, err := loadDataset(opts)
	if err != nil {
		return err
	}
	eng, err := streamgnn.NewEngine(ds.FeatDim, streamgnn.Config{
		Model:              opts.model,
		Strategy:           opts.strategy,
		Hidden:             opts.hidden,
		Seed:               opts.seed,
		WindowSteps:        ds.WindowSteps,
		DriftDetection:     opts.drift,
		IncrementalForward: opts.incremental,
		RefreshEverySteps:  opts.refreshEvery,
		DirtyFullThreshold: opts.dirtyThreshold,
		DeltaForward:       opts.delta,
		DeltaEpsilon:       opts.deltaEps,
		DependencySchedule: opts.depSchedule,
		Interval:           opts.interval,
		KernelWorkers:      opts.kernelWorkers,
		Shards:             opts.shards,
		ShardLayout:        opts.shardLayout,
	})
	if err != nil {
		return err
	}
	// Register the workload before any checkpoint load: restored pending
	// predictions attach to queries by name, and the link task must exist
	// for its state to land.
	for _, q := range ds.Queries {
		q := q
		err := eng.AddQuery(streamgnn.Query{
			Name:      q.Name,
			Anchors:   q.Anchors,
			Delta:     q.Delta,
			Threshold: q.Threshold,
			Labeler: func(anchor, step int) (float64, bool) {
				return q.Labeler(eng.Graph(), anchor, step)
			},
		})
		if err != nil {
			return err
		}
	}
	if ds.LinkPred {
		eng.EnableLinkPrediction()
	}

	// Coordinator mode hooks in before the replayer so every stream batch —
	// including the ones replayed during a -resume fast-forward — is routed
	// to the replica outboxes before the engine consumes it.
	var coord *cluster.Coordinator
	src := stream.Source(ds.Source())
	var routed *routingSource
	if opts.role == "coordinator" {
		trans := make([]cluster.Transport, len(peerURLs))
		for i, p := range peerURLs {
			trans[i] = &cluster.HTTPTransport{Base: p}
		}
		if coord, err = cluster.NewCoordinator(eng, trans); err != nil {
			return err
		}
		routed = &routingSource{src: src, coord: coord}
		src = routed
		fmt.Printf("coordinating %d shard replicas: %s\n", len(peerURLs), strings.Join(peerURLs, ", "))
	}

	// The engine owns sliding-window expiry (Config.WindowSteps), so the
	// replayer only applies events.
	rep := stream.NewReplayer(eng.Graph(), src, 0)
	if opts.resume {
		// Rebuild the snapshot by replaying the stream up to the saved step
		// (the checkpoint holds learned and runtime state, not the graph).
		for i := 0; i < resumeStep; i++ {
			if !rep.Advance() {
				return fmt.Errorf("stream ends at step %d, checkpoint is from step %d", i, resumeStep)
			}
		}
		if routed != nil && routed.err != nil {
			return routed.err
		}
		if err := eng.LoadCheckpoint(bytes.NewReader(ckptData)); err != nil {
			return err
		}
	}

	srv := &server{eng: eng, dataset: ds.Name, started: time.Now()}
	answer := serve.Answerer(srv.answerBatch)
	if coord != nil {
		// Fan /query micro-batches out across the replicas' serving mirrors;
		// anything unroutable (or any failed remote slice) is answered
		// locally, so remote serving can accelerate but never change an
		// answer. PublishStep runs under mu right after each Step so the
		// mirrors always serve the latest completed step.
		remoteFns := coord.RemoteAnswerers()
		remotes := make([]serve.Answerer, len(remoteFns))
		for i, f := range remoteFns {
			remotes[i] = serve.Answerer(f)
		}
		answer = serve.NewFanout(answer, serve.Router(coord.Route), remotes)
		srv.afterStep = func() {
			if snap := eng.QuerySnapshot(); snap != nil {
				coord.PublishStep(snap.Step())
			}
		}
		srv.extraMetrics = coord.WriteMetrics
	}
	srv.batcher = serve.NewBatcher(serve.Config{MaxBatch: opts.batchMax, MaxWait: opts.batchWait}, answer)
	defer srv.batcher.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var httpSrv *http.Server
	httpErr := make(chan error, 1)
	if opts.listen != "" {
		httpSrv = &http.Server{Addr: opts.listen, Handler: srv.mux()}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				httpErr <- err
			}
		}()
		fmt.Printf("admin endpoints on %s (/healthz /stats /metrics)\n", opts.listen)
	}

	fmt.Printf("monitoring %s with %s (%s strategy), %d steps\n\n", ds.Name, opts.model, opts.strategy, ds.Steps)
	interrupted, err := srv.replay(ctx, rep, opts.rate)
	if err != nil {
		return err
	}
	if !interrupted {
		fmt.Printf("\nreplay finished in %v\n", time.Since(srv.started).Round(time.Millisecond))
		srv.printStatus(rep.Step())
		if opts.listen != "" {
			fmt.Println("serving until SIGINT/SIGTERM")
			select {
			case <-ctx.Done():
			case err := <-httpErr:
				return err
			}
		}
	} else {
		fmt.Printf("\nshutdown signal at step %d\n", rep.Step())
	}

	// Quiesce serving before the final checkpoint (the deferred Close above
	// is only a safety net for the error paths — Close is idempotent).
	if err := srv.shutdown(opts.ckptPath); err != nil {
		return err
	}
	if opts.ckptPath != "" {
		fmt.Printf("checkpoint written to %s\n", opts.ckptPath)
	}
	if httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			return err
		}
	}
	select {
	case err := <-httpErr:
		return err
	default:
	}
	return nil
}

func loadDataset(opts options) (*workload.Dataset, error) {
	if opts.input != "" {
		return loadExternal(opts.input)
	}
	return workload.ByName(opts.dataset, workload.GenConfig{Seed: opts.seed, Steps: opts.steps})
}

// loadExternal wraps a JSONL event file as a dataset with continuous link
// prediction as the workload (external streams carry no query definitions).
func loadExternal(path string) (*workload.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	batches, err := stream.ReadJSONL(f)
	if err != nil {
		return nil, err
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("no events in %s", path)
	}
	featDim := stream.InferFeatDim(batches)
	if featDim == 0 {
		return nil, fmt.Errorf("%s has no node events to infer the feature dimension from", path)
	}
	return &workload.Dataset{
		Name:     path,
		FeatDim:  featDim,
		Batches:  batches,
		Steps:    batches[len(batches)-1].Step + 1,
		LinkPred: true,
	}, nil
}

// server owns the engine. The replay loop and the HTTP handlers synchronize
// on mu; handlers only hold it long enough to take snapshots.
type server struct {
	mu      sync.Mutex
	eng     *streamgnn.Engine
	dataset string
	started time.Time
	done    bool // replay finished

	// batcher is the /query admission queue. Its answer path reads the
	// engine's atomic serving snapshot, NOT mu: query batches — including
	// density queries, which evaluate from the snapshot's frozen seed window
	// and walk adjacency — score concurrently with the replay loop's Step.
	batcher *serve.Batcher

	// afterStep, when set, runs under mu right after each successful Step —
	// coordinator mode publishes the new serving snapshot to the replicas.
	afterStep func()
	// extraMetrics, when set, appends extra metric families to /metrics
	// (coordinator mode: the streamgnn_cluster_* family).
	extraMetrics func(io.Writer)
}

// answerBatch answers one flushed micro-batch against the latest published
// serving snapshot — lock-free with respect to the step loop for all three
// query kinds. The KDE seed-window density is evaluated at most once per
// snapshot (QuerySnapshot.Density memoizes), shared by every density query.
func (s *server) answerBatch(reqs []query.Request) []query.Answer {
	snapshot := s.eng.QuerySnapshot()
	if snapshot == nil {
		out := make([]query.Answer, len(reqs))
		for i := range out {
			out[i] = query.Answer{Err: "no step completed yet"}
		}
		return out
	}
	var density []float64
	for _, r := range reqs {
		if r.Kind == query.KindDensity {
			if d, err := snapshot.Density(); err == nil {
				density = d
			}
			break
		}
	}
	return snapshot.Answer(reqs, density)
}

// replay drives the engine until the stream ends or ctx is canceled. It
// reports whether it stopped because of a shutdown signal.
func (s *server) replay(ctx context.Context, rep *stream.Replayer, rate float64) (interrupted bool, err error) {
	var pace *time.Ticker
	if rate > 0 {
		pace = time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer pace.Stop()
	}
	for {
		select {
		case <-ctx.Done():
			return true, nil
		default:
		}
		if pace != nil {
			select {
			case <-ctx.Done():
				return true, nil
			case <-pace.C:
			}
		}
		if !rep.Advance() {
			break
		}
		t := rep.Step()
		s.mu.Lock()
		if err := s.eng.Step(); err != nil {
			s.mu.Unlock()
			return false, err
		}
		if s.afterStep != nil {
			s.afterStep()
		}
		alerts := s.eng.TakeAlerts()
		drifted := s.eng.DriftDetected()
		s.mu.Unlock()

		for _, a := range alerts {
			fmt.Printf("[step %3d] ALERT %-38q anchor %4d score %7.2f (for step %d)\n",
				t, a.Query, a.Anchor, a.Score, a.ForStep)
		}
		if drifted {
			fmt.Printf("[step %3d] DRIFT detected — query losses shifted; the online trainer is re-fitting\n", t)
		}
		if t > 0 && t%10 == 0 {
			s.printStatus(t)
		}
	}
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	return false, nil
}

// shutdown quiesces serving and then writes the final checkpoint (when
// ckptPath is non-empty). The order is load-bearing and pinned by a
// regression test: Close first drains the admission queue and waits for
// in-flight micro-batches, so the checkpoint is never captured while
// answers are still being produced — a resumed service starts from state at
// least as fresh as every answer the old process gave.
func (s *server) shutdown(ckptPath string) error {
	s.batcher.Close()
	if ckptPath == "" {
		return nil
	}
	return s.writeCheckpoint(ckptPath)
}

func (s *server) writeCheckpoint(path string) error {
	var buf bytes.Buffer
	s.mu.Lock()
	err := s.eng.SaveCheckpoint(&buf)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

func (s *server) printStatus(step int) {
	s.mu.Lock()
	m := s.eng.Metrics()
	nodes, edges := s.eng.NumNodes(), s.eng.NumEdges()
	s.mu.Unlock()
	line := fmt.Sprintf("[step %3d] %d nodes, %d edges", step, nodes, edges)
	if m.EventN > 0 {
		line += fmt.Sprintf(", %d resolved, MSE %.3f, event AUC %.3f", m.EventN, m.MSE, m.EventAUC)
	}
	if m.LinkN > 0 {
		line += fmt.Sprintf(", link AUC %.3f, acc %.3f, MRR %.3f", m.LinkAUC, m.Accuracy, m.MRR)
	}
	fmt.Println(line)
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/query", s.handleQuery)
	return mux
}

// queryRequest is the POST /query body.
type queryRequest struct {
	Queries []query.Request `json:"queries"`
}

// queryResponse is the POST /query reply: one answer per query, in request
// order, plus the stream step of the snapshot that was current when the
// response was assembled.
type queryResponse struct {
	Step    int            `json:"step"`
	Answers []query.Answer `json:"answers"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON query batch", http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, `bad request: empty "queries"`, http.StatusBadRequest)
		return
	}
	snapshot := s.eng.QuerySnapshot()
	if snapshot == nil {
		http.Error(w, "no step completed yet", http.StatusServiceUnavailable)
		return
	}
	answers := s.batcher.Submit(req.Queries)
	if answers == nil {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(queryResponse{Step: s.eng.QuerySnapshot().Step(), Answers: answers})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// statsResponse is the /stats JSON document.
type statsResponse struct {
	Dataset       string              `json:"dataset"`
	Step          int                 `json:"step"`
	Nodes         int                 `json:"nodes"`
	Edges         int                 `json:"edges"`
	ReplayDone    bool                `json:"replay_done"`
	UptimeSeconds float64             `json:"uptime_seconds"`
	Stats         streamgnn.Stats     `json:"stats"`
	Metrics       metricsJSON         `json:"metrics"`
	Telemetry     streamgnn.Telemetry `json:"telemetry"`
}

// metricsJSON mirrors streamgnn.Metrics with NaN-free AUC fields (JSON has
// no NaN; an undefined AUC is reported as null).
type metricsJSON struct {
	N        int      `json:"n"`
	EventN   int      `json:"event_n"`
	EventAUC *float64 `json:"event_auc"`
	MSE      float64  `json:"mse"`
	LinkN    int      `json:"link_n"`
	LinkAUC  *float64 `json:"link_auc"`
	Accuracy float64  `json:"accuracy"`
	MRR      float64  `json:"mrr"`
}

func finiteOrNil(v float64) *float64 {
	if v != v { // NaN
		return nil
	}
	return &v
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := statsResponse{
		Dataset:       s.dataset,
		Step:          s.eng.CurrentStep(),
		Nodes:         s.eng.NumNodes(),
		Edges:         s.eng.NumEdges(),
		ReplayDone:    s.done,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Stats:         s.eng.Stats(),
		Telemetry:     s.eng.Telemetry(),
	}
	m := s.eng.Metrics()
	s.mu.Unlock()
	resp.Metrics = metricsJSON{
		N: m.N, EventN: m.EventN, EventAUC: finiteOrNil(m.EventAUC), MSE: m.MSE,
		LinkN: m.LinkN, LinkAUC: finiteOrNil(m.LinkAUC), Accuracy: m.Accuracy, MRR: m.MRR,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	tel := s.eng.Telemetry()
	st := s.eng.Stats()
	m := s.eng.Metrics()
	step := s.eng.CurrentStep()
	nodes, edges := s.eng.NumNodes(), s.eng.NumEdges()
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b bytes.Buffer

	obs.WriteHeader(&b, "streamgnn_steps_total", "Completed engine steps.", "counter")
	obs.WriteIntValue(&b, "streamgnn_steps_total", "", tel.Steps)
	obs.WriteHeader(&b, "streamgnn_step_seconds", "Whole-step latency.", "histogram")
	obs.WriteHistogram(&b, "streamgnn_step_seconds", "", snap(tel.Step))
	obs.WriteHeader(&b, "streamgnn_step_phase_seconds", "Per-phase step latency.", "histogram")
	for _, phase := range streamgnn.StepPhases() {
		obs.WriteHistogram(&b, "streamgnn_step_phase_seconds", fmt.Sprintf("phase=%q", phase), snap(tel.Phases[phase]))
	}

	obs.WriteHeader(&b, "streamgnn_forwards_total", "Forward inference passes, by mode.", "counter")
	obs.WriteIntValue(&b, "streamgnn_forwards_total", `mode="full"`, tel.FullForwards)
	obs.WriteIntValue(&b, "streamgnn_forwards_total", `mode="incremental"`, tel.IncrementalForwards)
	obs.WriteIntValue(&b, "streamgnn_forwards_total", `mode="delta"`, tel.DeltaForwards)
	obs.WriteHeader(&b, "streamgnn_forward_skipped_rows_total", "Embedding rows incremental forwards did not recompute.", "counter")
	obs.WriteIntValue(&b, "streamgnn_forward_skipped_rows_total", "", tel.SkippedRows)
	if tel.DirtyFraction.Count > 0 {
		obs.WriteHeader(&b, "streamgnn_forward_dirty_fraction", "Per-step compute-region fraction in incremental mode.", "histogram")
		obs.WriteHistogram(&b, "streamgnn_forward_dirty_fraction", "", snap(tel.DirtyFraction))
	}
	if tel.DeltaForwards > 0 || tel.DeltaAborts > 0 {
		obs.WriteHeader(&b, "streamgnn_delta_aborts_total", "Delta passes aborted on the candidate budget (fell back to a full forward).", "counter")
		obs.WriteIntValue(&b, "streamgnn_delta_aborts_total", "", tel.DeltaAborts)
		obs.WriteHeader(&b, "streamgnn_delta_rows_total", "Delta-pass stage rows, by outcome.", "counter")
		obs.WriteIntValue(&b, "streamgnn_delta_rows_total", `outcome="candidate"`, tel.DeltaCandidateRows)
		obs.WriteIntValue(&b, "streamgnn_delta_rows_total", `outcome="pruned"`, tel.DeltaPrunedRows)
		obs.WriteHeader(&b, "streamgnn_delta_pruned_fraction", "Per-pass pruned-frontier fraction (pruned rows over candidate rows).", "histogram")
		obs.WriteHistogram(&b, "streamgnn_delta_pruned_fraction", "", snap(tel.DeltaPrunedFraction))
	}

	if tel.Shards > 1 {
		obs.WriteHeader(&b, "streamgnn_shard_nodes", "Node occupancy per shard.", "gauge")
		obs.WriteIndexedIntValues(&b, "streamgnn_shard_nodes", "shard", tel.ShardNodes)
		obs.WriteHeader(&b, "streamgnn_shard_spliced_rows_total", "Embedding rows contributed per shard by sharded forwards.", "counter")
		obs.WriteIndexedIntValues(&b, "streamgnn_shard_spliced_rows_total", "shard", tel.ShardSplicedRows)
		obs.WriteHeader(&b, "streamgnn_cross_shard_edge_fraction", "Fraction of live edges whose endpoints live on different shards.", "gauge")
		obs.WriteValue(&b, "streamgnn_cross_shard_edge_fraction", "", tel.CrossShardEdgeFraction)
		obs.WriteHeader(&b, "streamgnn_shard_merge_seconds", "Cross-shard merge-phase latency.", "histogram")
		obs.WriteHistogram(&b, "streamgnn_shard_merge_seconds", "", snap(tel.ShardMerge))
	}

	obs.WriteHeader(&b, "streamgnn_train_targets_total", "Training targets consumed, by kind.", "counter")
	for _, kv := range []struct {
		kind string
		v    int
	}{
		{"self_node", st.SelfNodeTargets}, {"self_edge", st.SelfEdgeTargets},
		{"sup_node", st.SupNodeTargets}, {"sup_pair", st.SupPairTargets},
		{"replay", st.ReplayTargets},
	} {
		obs.WriteIntValue(&b, "streamgnn_train_targets_total", fmt.Sprintf("kind=%q", kv.kind), int64(kv.v))
	}
	obs.WriteHeader(&b, "streamgnn_trained_partitions_total", "Node partitions trained.", "counter")
	obs.WriteIntValue(&b, "streamgnn_trained_partitions_total", "", int64(st.TrainedPartitions))
	obs.WriteHeader(&b, "streamgnn_chip_moves_total", "Accepted chip moves (Algorithm 1).", "counter")
	obs.WriteIntValue(&b, "streamgnn_chip_moves_total", "", int64(st.ChipMoves))
	obs.WriteHeader(&b, "streamgnn_chip_entropy", "Normalized entropy of the chip distribution.", "gauge")
	obs.WriteValue(&b, "streamgnn_chip_entropy", "", st.ChipEntropy)
	obs.WriteHeader(&b, "streamgnn_partition_cache_events_total", "Partition cache activity, by event.", "counter")
	obs.WriteIntValue(&b, "streamgnn_partition_cache_events_total", `event="hit"`, st.CacheHits)
	obs.WriteIntValue(&b, "streamgnn_partition_cache_events_total", `event="miss"`, st.CacheMisses)
	obs.WriteIntValue(&b, "streamgnn_partition_cache_events_total", `event="invalidation"`, st.CacheInvalidations)
	obs.WriteHeader(&b, "streamgnn_parallel_units_total", "Training units evaluated on worker goroutines.", "counter")
	obs.WriteIntValue(&b, "streamgnn_parallel_units_total", "", st.ParallelUnits)
	if tel.SchedSteps > 0 {
		obs.WriteHeader(&b, "streamgnn_sched_steps_total", "Training rounds run under the conflict-group schedule.", "counter")
		obs.WriteIntValue(&b, "streamgnn_sched_steps_total", "", tel.SchedSteps)
		obs.WriteHeader(&b, "streamgnn_sched_groups_total", "Conflict groups formed across scheduled rounds.", "counter")
		obs.WriteIntValue(&b, "streamgnn_sched_groups_total", "", tel.SchedGroups)
		obs.WriteHeader(&b, "streamgnn_sched_units_total", "Training units scheduled across conflict groups.", "counter")
		obs.WriteIntValue(&b, "streamgnn_sched_units_total", "", tel.SchedUnits)
		obs.WriteHeader(&b, "streamgnn_sched_collapsed_steps_total", "Scheduled rounds that collapsed into a single conflict group.", "counter")
		obs.WriteIntValue(&b, "streamgnn_sched_collapsed_steps_total", "", tel.SchedCollapsedSteps)
		obs.WriteHeader(&b, "streamgnn_sched_group_fraction", "Per-step groups-over-units fraction (1 = fully independent, near 0 = hub collapse).", "histogram")
		obs.WriteHistogram(&b, "streamgnn_sched_group_fraction", "", snap(tel.SchedGroupFraction))
	}

	obs.WriteHeader(&b, "streamgnn_stream_step", "Next stream step to execute.", "gauge")
	obs.WriteIntValue(&b, "streamgnn_stream_step", "", int64(step))
	obs.WriteHeader(&b, "streamgnn_graph_nodes", "Nodes in the snapshot.", "gauge")
	obs.WriteIntValue(&b, "streamgnn_graph_nodes", "", int64(nodes))
	obs.WriteHeader(&b, "streamgnn_graph_edges", "Directed edges in the snapshot.", "gauge")
	obs.WriteIntValue(&b, "streamgnn_graph_edges", "", int64(edges))

	obs.WriteHeader(&b, "streamgnn_resolved_predictions", "Resolved predictions, by task.", "gauge")
	obs.WriteIntValue(&b, "streamgnn_resolved_predictions", `task="event"`, int64(m.EventN))
	obs.WriteIntValue(&b, "streamgnn_resolved_predictions", `task="link"`, int64(m.LinkN))
	if m.EventN > 0 && m.EventAUC == m.EventAUC {
		obs.WriteHeader(&b, "streamgnn_event_auc", "AUC over resolved event-query predictions.", "gauge")
		obs.WriteValue(&b, "streamgnn_event_auc", "", m.EventAUC)
	}
	if m.LinkN > 0 && m.LinkAUC == m.LinkAUC {
		obs.WriteHeader(&b, "streamgnn_link_auc", "AUC over link-prediction scores.", "gauge")
		obs.WriteValue(&b, "streamgnn_link_auc", "", m.LinkAUC)
	}

	// Query-serving instruments. The batcher's counters are atomic, so this
	// section deliberately runs outside mu — /metrics never blocks serving.
	obs.WriteHeader(&b, "streamgnn_query_answered_total", "Queries answered through the admission queue.", "counter")
	obs.WriteIntValue(&b, "streamgnn_query_answered_total", "", s.batcher.Queries())
	obs.WriteHeader(&b, "streamgnn_query_batches_total", "Micro-batches flushed by the admission queue.", "counter")
	obs.WriteIntValue(&b, "streamgnn_query_batches_total", "", s.batcher.Batches())
	obs.WriteHeader(&b, "streamgnn_query_queue_depth", "Queries admitted but not yet answered.", "gauge")
	obs.WriteIntValue(&b, "streamgnn_query_queue_depth", "", s.batcher.QueueDepth())
	lat := s.batcher.LatencySnapshot()
	obs.WriteHeader(&b, "streamgnn_query_latency_seconds", "Per-query admission-to-answer latency.", "histogram")
	obs.WriteHistogram(&b, "streamgnn_query_latency_seconds", "", lat)
	obs.WriteHeader(&b, "streamgnn_query_latency_quantile_seconds", "Estimated query-latency quantiles.", "gauge")
	obs.WriteValue(&b, "streamgnn_query_latency_quantile_seconds", `q="0.5"`, lat.Quantile(0.5))
	obs.WriteValue(&b, "streamgnn_query_latency_quantile_seconds", `q="0.99"`, lat.Quantile(0.99))
	obs.WriteHeader(&b, "streamgnn_query_batch_size", "Flushed micro-batch sizes, in queries per batch.", "histogram")
	obs.WriteHistogram(&b, "streamgnn_query_batch_size", "", s.batcher.BatchSizeSnapshot())

	if s.extraMetrics != nil {
		s.extraMetrics(&b)
	}

	w.Write(b.Bytes())
}

// snap converts a public telemetry histogram back into an obs snapshot for
// the Prometheus writers.
func snap(h streamgnn.TelemetryHistogram) obs.Snapshot {
	return obs.Snapshot{Count: h.Count, Sum: h.Sum, Bounds: h.Bounds, Counts: h.Counts}
}
