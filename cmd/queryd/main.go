// Command queryd is a long-running continuous-monitoring demo: it replays a
// graph stream through the engine — one of the built-in workloads, or any
// external stream in the JSONL event encoding (see cmd/streamgen) — answers
// its continuous predictive queries at every step, trains the chosen DGNN
// online with the chosen strategy, and prints alerts, drift warnings and
// rolling metrics — the operational loop of the paper's Figure 2.
//
//	queryd -dataset Bitcoin -model TGCN -strategy kde -steps 60
//	queryd -input mystream.jsonl -model ROLAND       # external data
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"streamgnn/internal/autodiff"
	"streamgnn/internal/core"
	"streamgnn/internal/dgnn"
	"streamgnn/internal/drift"
	"streamgnn/internal/graph"
	"streamgnn/internal/metrics"
	"streamgnn/internal/query"
	"streamgnn/internal/stream"
	"streamgnn/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "Bitcoin", "workload: Bitcoin, Reddit, Taxi, StackOverflow, UCIMessages")
	input := flag.String("input", "", "replay an external JSONL event stream instead of a built-in workload")
	model := flag.String("model", "TGCN", "DGNN baseline")
	strategy := flag.String("strategy", "kde", "training strategy: full, weighted, kde")
	steps := flag.Int("steps", 60, "stream steps to replay")
	seed := flag.Int64("seed", 1, "random seed")
	hidden := flag.Int("hidden", 16, "embedding dimension")
	detectDrift := flag.Bool("drift", true, "print drift warnings (Page-Hinkley over query loss)")
	flag.Parse()

	if err := run(*dataset, *input, *model, *strategy, *steps, *seed, *hidden, *detectDrift); err != nil {
		fmt.Fprintln(os.Stderr, "queryd:", err)
		os.Exit(1)
	}
}

func run(dataset, input, model, strategy string, steps int, seed int64, hidden int, detectDrift bool) error {
	var ds *workload.Dataset
	var err error
	if input != "" {
		ds, err = loadExternal(input)
		dataset = input
	} else {
		ds, err = workload.ByName(dataset, workload.GenConfig{Seed: seed, Steps: steps})
	}
	if err != nil {
		return err
	}
	kind, err := dgnn.ParseKind(model)
	if err != nil {
		return err
	}
	strat, err := core.ParseStrategy(strategy)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewDynamic(ds.FeatDim)
	rep := stream.NewReplayer(g, ds.Source(), ds.WindowSteps)
	m := dgnn.New(kind, rng, ds.FeatDim, hidden)
	heads := query.NewHeads(rng, hidden)
	wl := query.NewWorkload(heads)
	ds.Attach(wl, seed+1)
	cfg := core.DefaultConfig()
	if strat != core.Full {
		cfg.RoundsPerStep = 30
	}
	opt := m.WrapOptimizer(autodiff.NewAdam(cfg.LR, append(m.Params(), heads.Params()...)))
	trainer := core.NewTrainer(g, m, wl, opt, cfg, rng)

	fmt.Printf("monitoring %s with %s (%s strategy), %d steps\n\n", dataset, model, strat, steps)
	var detector *drift.PageHinkley
	if detectDrift {
		detector = drift.NewPageHinkley(0.05, 3)
	}
	seenOutcomes := 0
	var sched *core.Scheduler
	start := time.Now()
	for rep.Advance() {
		t := rep.Step()
		if sched == nil {
			if sched, err = core.NewScheduler(trainer, cfg, strat, rng); err != nil {
				return err
			}
		}
		updated := g.Updated()
		m.BeginStep(t)
		tp := autodiff.NewTape()
		emb := m.Forward(tp, dgnn.FullView(g))
		wl.Reveal(g, t)
		wl.Predict(emb.Value, t)
		sched.OnStep(t, updated)
		g.ResetUpdated()

		for _, a := range wl.TakeAlerts() {
			fmt.Printf("[step %3d] ALERT %-38q anchor %4d score %7.2f (for step %d)\n",
				t, a.Query, a.Anchor, a.Score, a.ForStep)
		}
		if detector != nil {
			outs := wl.Outcomes()
			if len(outs) > seenOutcomes {
				var sum float64
				for _, o := range outs[seenOutcomes:] {
					d := o.Score - o.Truth
					sum += d * d
				}
				if detector.Add(sum / float64(len(outs)-seenOutcomes)) {
					fmt.Printf("[step %3d] DRIFT detected — query losses shifted; the online trainer is re-fitting\n", t)
				}
				seenOutcomes = len(outs)
			}
		}
		if t > 0 && t%10 == 0 {
			printStatus(t, g, wl)
		}
	}
	fmt.Printf("\nreplay finished in %v\n", time.Since(start).Round(time.Millisecond))
	printStatus(rep.Step(), g, wl)
	return nil
}

// loadExternal wraps a JSONL event file as a dataset with continuous link
// prediction as the workload (external streams carry no query definitions).
func loadExternal(path string) (*workload.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	batches, err := stream.ReadJSONL(f)
	if err != nil {
		return nil, err
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("no events in %s", path)
	}
	featDim := stream.InferFeatDim(batches)
	if featDim == 0 {
		return nil, fmt.Errorf("%s has no node events to infer the feature dimension from", path)
	}
	return &workload.Dataset{
		Name:     path,
		FeatDim:  featDim,
		Batches:  batches,
		Steps:    batches[len(batches)-1].Step + 1,
		LinkPred: true,
	}, nil
}

func printStatus(step int, g *graph.Dynamic, wl *query.Workload) {
	outs := wl.Outcomes()
	var scores, truths []float64
	var events []bool
	for _, o := range outs {
		scores = append(scores, o.Score)
		truths = append(truths, o.Truth)
		events = append(events, o.Event)
	}
	line := fmt.Sprintf("[step %3d] %d nodes, %d edges", step, g.N(), g.NumEdges())
	if len(outs) > 0 {
		line += fmt.Sprintf(", %d resolved, MSE %.3f, AUC %.3f",
			len(outs), metrics.MSE(scores, truths), metrics.AUC(scores, events))
	}
	if lt := wl.LinkTask(); lt != nil {
		if ls, ll := lt.Scores(); len(ls) > 0 {
			line += fmt.Sprintf(", link acc %.3f, MRR %.3f",
				metrics.Accuracy(ls, ll, 0), metrics.MRR(lt.Ranks()))
		}
	}
	fmt.Println(line)
}
