// Cluster mode: -role=coordinator runs the engine and farms per-shard
// forwards out to replica services; -role=replica serves one shard's
// mirror over localhost HTTP (see internal/cluster and DESIGN.md §17).
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamgnn/internal/cluster"
	"streamgnn/internal/obs"
	"streamgnn/internal/stream"
)

// peerList parses -peers: comma-separated replica base URLs, one per shard,
// in shard order.
func (o options) peerList() []string {
	var out []string
	for _, p := range strings.Split(o.peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// routingSource wraps the stream source so every batch is replicated to the
// replica outboxes before the engine consumes it — including batches
// replayed during a -resume fast-forward, which is how a restarted
// coordinator redelivers history to replicas that are behind (they
// deduplicate by step).
type routingSource struct {
	src   stream.Source
	coord *cluster.Coordinator
	err   error
}

func (r *routingSource) Next() (stream.Batch, bool) {
	b, ok := r.src.Next()
	if ok && r.err == nil {
		r.err = r.coord.RouteEvents(b.Step, b.Events)
	}
	return b, ok
}

// runReplica is the -role=replica service: a cluster.Replica behind the HTTP
// transport, with an optional WAL and its own checkpoint written on SIGTERM
// — per-replica crash recovery independent of the coordinator's.
func runReplica(opts options) error {
	if opts.listen == "" {
		return errors.New("-role=replica requires -listen")
	}
	rep := cluster.NewReplica()
	if opts.replicaID >= 0 {
		rep.SetExpectShard(opts.replicaID)
	}
	if opts.resume {
		if opts.ckptPath == "" {
			return errors.New("-resume requires -checkpoint")
		}
		f, err := os.Open(opts.ckptPath)
		if err != nil {
			return err
		}
		err = rep.RestoreCheckpoint(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg := rep.Config()
		fmt.Printf("replica restored from %s: shard %d of %d (%s), model %s\n",
			opts.ckptPath, cfg.Shard, cfg.Shards, cfg.Layout, cfg.Model)
		if opts.walPath != "" {
			f, err := os.Open(opts.walPath)
			switch {
			case err == nil:
				replayErr := rep.ReplayWAL(f)
				f.Close()
				if replayErr != nil {
					return replayErr
				}
				fmt.Printf("wal %s replayed; graph mirror at step %d\n", opts.walPath, rep.LastApplied())
			case !errors.Is(err, os.ErrNotExist):
				return err
			}
		}
	}
	if opts.walPath != "" {
		wf, err := os.OpenFile(opts.walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer wf.Close()
		rep.SetWAL(cluster.NewWAL(wf))
	}

	mux := http.NewServeMux()
	mux.Handle("/cluster/", cluster.NewHTTPHandler(rep))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeReplicaMetrics(w, rep)
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: opts.listen, Handler: mux}
	httpErr := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			httpErr <- err
		}
	}()
	fmt.Printf("replica serving cluster RPCs on %s (/cluster/* /healthz /metrics)\n", opts.listen)

	select {
	case <-ctx.Done():
	case err := <-httpErr:
		return err
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if opts.ckptPath != "" && rep.Config().Shards > 0 {
		var buf bytes.Buffer
		if err := rep.SaveCheckpoint(&buf); err != nil {
			return err
		}
		if err := os.WriteFile(opts.ckptPath, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("replica checkpoint written to %s (graph mirror at step %d)\n", opts.ckptPath, rep.LastApplied())
	}
	return nil
}

// writeReplicaMetrics emits the replica-side streamgnn_cluster_* family.
func writeReplicaMetrics(w io.Writer, rep *cluster.Replica) {
	st := rep.Stats()
	cfg := rep.Config()
	obs.WriteHeader(w, "streamgnn_cluster_replica_shard", "Shard index this replica serves (-1 before configuration).", "gauge")
	shard := int64(-1)
	if cfg.Shards > 0 {
		shard = int64(cfg.Shard)
	}
	obs.WriteIntValue(w, "streamgnn_cluster_replica_shard", "", shard)
	obs.WriteHeader(w, "streamgnn_cluster_replica_events_applied_total", "Replicated events applied to the graph mirror.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_replica_events_applied_total", "", st.EventsApplied)
	obs.WriteHeader(w, "streamgnn_cluster_replica_events_total", "Replicated events by ownership (owned vs halo).", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_replica_events_total", `kind="owned"`, st.OwnedEvents)
	obs.WriteIntValue(w, "streamgnn_cluster_replica_events_total", `kind="halo"`, st.HaloEvents)
	obs.WriteHeader(w, "streamgnn_cluster_replica_forwards_total", "Shard-part forwards executed.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_replica_forwards_total", "", st.Forwards)
	obs.WriteHeader(w, "streamgnn_cluster_replica_full_syncs_total", "Full model-mirror syncs received.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_replica_full_syncs_total", "", st.FullSyncs)
	obs.WriteHeader(w, "streamgnn_cluster_replica_state_patches_total", "Incremental state-row patches applied.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_replica_state_patches_total", "", st.Patches)
	obs.WriteHeader(w, "streamgnn_cluster_replica_publishes_total", "Serving-snapshot publishes received.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_replica_publishes_total", "", st.Publishes)
	obs.WriteHeader(w, "streamgnn_cluster_replica_answers_total", "Predictive queries answered from the serving mirror.", "counter")
	obs.WriteIntValue(w, "streamgnn_cluster_replica_answers_total", "", st.Answers)
	obs.WriteHeader(w, "streamgnn_cluster_replica_last_applied_step", "Last event step applied to the graph mirror.", "gauge")
	obs.WriteIntValue(w, "streamgnn_cluster_replica_last_applied_step", "", st.LastApplied)
}
