// Command streamgen exports a built-in synthetic graph-stream workload as
// JSON Lines on stdout, one event per line, for inspection or replay by
// external tools (and by queryd/examples via stream.JSONLSource).
//
//	streamgen -dataset Taxi -steps 40 -seed 1 > taxi.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"streamgnn/internal/stream"
	"streamgnn/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "Bitcoin", "workload: "+strings.Join(workload.Names(), ", "))
	steps := flag.Int("steps", 40, "stream steps")
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Float64("scale", 1, "workload scale factor")
	flag.Parse()

	ds, err := workload.ByName(*dataset, workload.GenConfig{Seed: *seed, Steps: *steps, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamgen:", err)
		os.Exit(1)
	}
	if err := stream.WriteJSONL(os.Stdout, ds.Batches); err != nil {
		fmt.Fprintln(os.Stderr, "streamgen:", err)
		os.Exit(1)
	}
}
