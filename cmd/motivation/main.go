// Command motivation reproduces Figure 4: the need for online continuous
// training. For each dataset it prints the per-step evaluation loss under
// (a) continuous training at every step and (b) training stopped after the
// first quarter of the stream, then summarizes the tail-loss blowup.
package main

import (
	"flag"
	"fmt"
	"os"

	"streamgnn/internal/bench"
)

func main() {
	steps := flag.Int("steps", 40, "stream steps")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	panels := []struct{ dataset, model string }{
		{"Bitcoin", "TGCN"},
		{"Reddit", "GCLSTM"},
		{"Taxi", "DCRNN"},
	}
	for _, p := range panels {
		res, err := bench.RunMotivation(p.dataset, p.model, *steps, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "motivation:", err)
			os.Exit(1)
		}
		fmt.Printf("FIGURE 4 — %s (%s), training stops at step %d in the partial run\n",
			res.Dataset, res.Model, res.StopStep)
		fmt.Printf("%6s %18s %18s\n", "step", "continuous-loss", "partial-loss")
		for s := 1; s < len(res.Continuous); s++ {
			fmt.Printf("%6d %18.4f %18.4f\n", s, res.Continuous[s], res.Partial[s])
		}
		contTail := bench.TailMeanLoss(res.Continuous)
		partTail := bench.TailMeanLoss(res.Partial)
		fmt.Printf("tail (last quarter) mean loss: continuous %.4f vs partial %.4f (%.1fx)\n",
			contTail, partTail, partTail/contTail)
		fmt.Printf("tail AUC: continuous %.3f vs partial %.3f\n\n",
			res.ContTailAUC, res.PartTailAUC)
	}
}
