// Command streambench regenerates the paper's evaluation tables:
//
//	streambench -table 1 [-runs 10]   # Table I  (event monitoring)
//	streambench -table 2 [-runs 10]   # Table II (link prediction)
//	streambench -table 3 [-runs 10]   # Table III (parameter study)
//	streambench -hotpath              # partition cache + parallel pairs
//	streambench -qps                  # batched query serving under load
//	streambench -delta                # splice vs. DeltaForward on a hub-heavy stream
//	streambench -sched                # serial apply vs. conflict-group schedule
//
// Use -steps and -scale to trade fidelity for speed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"streamgnn/internal/bench"
	"streamgnn/internal/tensor"
)

func main() {
	table := flag.Int("table", 1, "which table to reproduce (1, 2 or 3), or 0 with -scaling")
	scaling := flag.Bool("scaling", false, "run the scaling study instead of a table")
	hotpath := flag.Bool("hotpath", false, "benchmark the adaptive hot path (cache + workers) instead of a table")
	jsonOut := flag.String("json", "", "with -hotpath/-qps: also write the report as JSON to this file (e.g. BENCH_hotpath.json)")
	qps := flag.Bool("qps", false, "drive a query load against a live stream: rated-load QPS + latency percentiles through the micro-batching admission queue, ingestion-stall evidence, and a batched-vs-per-query saturation A/B")
	qpsRate := flag.Float64("qps-rate", 2000, "with -qps: target query rate for the rated-load phase")
	qpsBatch := flag.Int("qps-batch", 64, "with -qps: B, the micro-batch flush size (and the batched saturation call size)")
	qpsClients := flag.Int("qps-clients", 4, "with -qps: concurrent closed-loop clients in the saturation phases")
	qpsSeconds := flag.Float64("qps-seconds", 2, "with -qps: duration of each load phase")
	qpsFloor := flag.Float64("qps-floor", 0, "with -qps: exit non-zero unless the batched saturation phase sustains at least this many qps (CI gate)")
	delta := flag.Bool("delta", false, "benchmark region-splice vs. event-driven delta forward on a hub-heavy stream where the splice ladder falls back to full")
	deltaFloor := flag.Float64("delta-floor", 0, "with -delta: exit non-zero unless DeltaForward beats the splice engine by at least this factor (CI gate; e.g. 2)")
	sched := flag.Bool("sched", false, "benchmark the serial apply phase vs. the conflict-group schedule (Config.DependencySchedule) on sparse, hub and churn streams")
	schedFloor := flag.Float64("sched-floor", 0, "with -sched: exit non-zero unless the scheduler beats serial apply on the sparse stream by at least this factor (CI gate; e.g. 1.3)")
	runs := flag.Int("runs", 10, "repetitions per cell (the paper uses 10)")
	steps := flag.Int("steps", 40, "stream steps per run")
	scale := flag.Float64("scale", 1, "workload scale factor")
	kernelWorkers := flag.Int("kernel-workers", 0, "tensor-kernel parallelism (0 = serial, negative = NumCPU)")
	shards := flag.Int("shards", 4, "with -hotpath: shard count for the sharded-forward A/B (Config.Shards; <2 skips it)")
	flag.Parse()

	if *kernelWorkers < 0 {
		tensor.SetParallelism(runtime.NumCPU())
	} else if *kernelWorkers > 0 {
		tensor.SetParallelism(*kernelWorkers)
	}

	var err error
	if *sched {
		fmt.Printf("DEPENDENCY SCHEDULE: serial apply vs. conflict-group scheduling (%d timed steps/leg)\n\n", *steps)
		ab, serr := bench.RunScheduleAB(*steps, 1)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "streambench:", serr)
			os.Exit(1)
		}
		fmt.Print(ab.String())
		if *jsonOut != "" {
			data, jerr := json.MarshalIndent(ab, "", "  ")
			if jerr == nil {
				jerr = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
			}
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "streambench:", jerr)
				os.Exit(1)
			}
			fmt.Printf("\nJSON report written to %s\n", *jsonOut)
		}
		sparse := ab.Leg("sparse")
		if sparse == nil || sparse.SchedSteps == 0 {
			fmt.Fprintln(os.Stderr, "streambench: the scheduler never ran — the A/B proved nothing")
			os.Exit(1)
		}
		if sparse.GroupsPerStep <= 1 {
			fmt.Fprintln(os.Stderr, "streambench: the sparse stream never formed concurrent groups — the A/B proved nothing")
			os.Exit(1)
		}
		if *schedFloor > 0 && sparse.Speedup < *schedFloor {
			fmt.Fprintf(os.Stderr, "streambench: sparse scheduler speedup %.2fx is below the floor of %.2fx\n", sparse.Speedup, *schedFloor)
			os.Exit(1)
		}
		return
	}
	if *delta {
		fmt.Printf("DELTA FORWARD: splice vs. event-driven delta on a hub-heavy stream (%d timed steps)\n\n", *steps)
		ab, derr := bench.RunDeltaAB("WinGNN", *steps)
		if derr != nil {
			fmt.Fprintln(os.Stderr, "streambench:", derr)
			os.Exit(1)
		}
		fmt.Print(ab.String())
		if *jsonOut != "" {
			data, jerr := json.MarshalIndent(ab, "", "  ")
			if jerr == nil {
				jerr = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
			}
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "streambench:", jerr)
				os.Exit(1)
			}
			fmt.Printf("\nJSON report written to %s\n", *jsonOut)
		}
		if ab.DeltaForwards == 0 {
			fmt.Fprintln(os.Stderr, "streambench: the delta path never ran — the A/B proved nothing")
			os.Exit(1)
		}
		if *deltaFloor > 0 && ab.Speedup < *deltaFloor {
			fmt.Fprintf(os.Stderr, "streambench: delta speedup %.2fx is below the floor of %.2fx\n", ab.Speedup, *deltaFloor)
			os.Exit(1)
		}
		return
	}
	if *qps {
		fmt.Printf("QPS LOAD: batched predictive-query serving against a live stream (%.0fs phases)\n\n", *qpsSeconds)
		rep, qerr := bench.RunQPS("TGCN", *qpsSeconds, *qpsRate, *qpsBatch, *qpsClients)
		if qerr != nil {
			fmt.Fprintln(os.Stderr, "streambench:", qerr)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		if *jsonOut != "" {
			data, jerr := json.MarshalIndent(rep, "", "  ")
			if jerr == nil {
				jerr = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
			}
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "streambench:", jerr)
				os.Exit(1)
			}
			fmt.Printf("\nJSON report written to %s\n", *jsonOut)
		}
		if !rep.BatchedEqualsSerial {
			fmt.Fprintln(os.Stderr, "streambench: batched answers differ from serial answers")
			os.Exit(1)
		}
		if *qpsFloor > 0 && rep.BatchedQPS < *qpsFloor {
			fmt.Fprintf(os.Stderr, "streambench: batched saturation %.0f qps is below the floor of %.0f qps\n", rep.BatchedQPS, *qpsFloor)
			os.Exit(1)
		}
		return
	}
	if *hotpath {
		fmt.Printf("HOT PATH: partition cache, parallel pairs and incremental forward (%d timed steps)\n\n", *steps)
		rep, herr := bench.RunHotPath("Bitcoin", "TGCN", *steps, 1)
		if herr != nil {
			fmt.Fprintln(os.Stderr, "streambench:", herr)
			os.Exit(1)
		}
		ab, aerr := bench.RunForwardAB("TGCN", *steps)
		if aerr != nil {
			fmt.Fprintln(os.Stderr, "streambench:", aerr)
			os.Exit(1)
		}
		rep.Forward = &ab
		if *shards > 1 {
			sab, serr := bench.RunShardedAB("TGCN", *steps, *shards)
			if serr != nil {
				fmt.Fprintln(os.Stderr, "streambench:", serr)
				os.Exit(1)
			}
			rep.Sharded = &sab
		}
		dab, derr := bench.RunDeltaAB("WinGNN", *steps)
		if derr != nil {
			fmt.Fprintln(os.Stderr, "streambench:", derr)
			os.Exit(1)
		}
		rep.Delta = &dab
		scab, scerr := bench.RunScheduleAB(*steps, 1)
		if scerr != nil {
			fmt.Fprintln(os.Stderr, "streambench:", scerr)
			os.Exit(1)
		}
		rep.Sched = &scab
		fmt.Print(rep.String())
		if *jsonOut != "" {
			data, jerr := json.MarshalIndent(rep, "", "  ")
			if jerr == nil {
				jerr = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
			}
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "streambench:", jerr)
				os.Exit(1)
			}
			fmt.Printf("\nJSON report written to %s\n", *jsonOut)
		}
		return
	}
	if *scaling {
		fmt.Printf("SCALING STUDY: full vs KDE training cost as the Taxi stream grows (%d steps)\n\n", *steps)
		pts, serr := bench.RunScaling([]float64{0.5, 1, 2, 4}, *steps, 1)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "streambench:", serr)
			os.Exit(1)
		}
		bench.WriteScaling(os.Stdout, pts)
		return
	}
	switch *table {
	case 1:
		fmt.Printf("TABLE I: event monitoring workloads (%d runs/cell, %d steps)\n\n", *runs, *steps)
		err = runTable(bench.TableICells(), *runs, *steps, *scale, false)
	case 2:
		fmt.Printf("TABLE II: link prediction workloads (%d runs/cell, %d steps)\n\n", *runs, *steps)
		err = runTable(bench.TableIICells(), *runs, *steps, *scale, true)
	case 3:
		fmt.Printf("TABLE III: parameter study (%d runs/cell, %d steps, KDE method)\n\n", *runs, *steps)
		for _, spec := range bench.TableIIISweeps() {
			if err = runSweep(spec, *runs, *steps, *scale); err != nil {
				break
			}
			fmt.Println()
		}
	default:
		err = fmt.Errorf("unknown table %d", *table)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "streambench:", err)
		os.Exit(1)
	}
}

func runTable(cells [][2]string, runs, steps int, scale float64, linkPred bool) error {
	header(linkPred)
	for _, cell := range cells {
		for _, strat := range bench.Strategies() {
			cfg := bench.EqualizedCell(cell[0], cell[1], strat)
			cfg.Gen.Steps = steps
			cfg.Gen.Scale = scale
			agg, err := bench.RunRepeated(cfg, runs)
			if err != nil {
				return err
			}
			printRow(cell[0], cell[1], strat.String(), agg, linkPred)
		}
	}
	return nil
}

func runSweep(spec bench.SweepSpec, runs, steps int, scale float64) error {
	fmt.Printf("-- sweep %s on %s (%s) --\n", spec.Label, spec.Dataset, spec.Model)
	header(false)
	for _, v := range spec.Values {
		cfg := bench.EqualizedCell(spec.Dataset, spec.Model, bench.Strategies()[2])
		cfg.Gen.Steps = steps
		cfg.Gen.Scale = scale
		spec.Apply(&cfg, v)
		agg, err := bench.RunRepeated(cfg, runs)
		if err != nil {
			return err
		}
		printRow(spec.Dataset, spec.Model, fmt.Sprintf("%s=%g", spec.Label, v), agg, false)
	}
	return nil
}

func header(linkPred bool) {
	q := "Error"
	if linkPred {
		q = "Accuracy"
	}
	fmt.Printf("%-14s %-12s %-14s %16s %10s %16s %16s %16s\n",
		"Dataset", "Model", "Method", "TrainTime(s)", "Memory", q, "AUC", "MRR")
}

func printRow(dataset, model, method string, agg bench.AggResult, linkPred bool) {
	quality := agg.Error
	if linkPred {
		quality = agg.Accuracy
	}
	fmt.Printf("%-14s %-12s %-14s %16s %10s %16s %16s %16s\n",
		dataset, model, method,
		fmt.Sprintf("%.3f±%.3f", agg.Time.Mean(), agg.Time.Std()),
		bench.FormatBytes(agg.PeakBytes),
		fmt.Sprintf("%.3f±%.3f", quality.Mean(), quality.Std()),
		fmt.Sprintf("%.3f±%.3f", agg.AUC.Mean(), agg.AUC.Std()),
		fmt.Sprintf("%.3f±%.3f", agg.MRR.Mean(), agg.MRR.Std()))
}
