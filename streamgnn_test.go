package streamgnn

import (
	"math"
	"math/rand"
	"testing"
)

func TestModelNames(t *testing.T) {
	names := ModelNames()
	if len(names) != 8 || names[0] != "TGCN" || names[7] != "RTGCN" {
		t.Fatalf("ModelNames = %v", names)
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(2, Config{Model: "Bogus"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := NewEngine(2, Config{Strategy: "bogus"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := NewEngine(2, DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestStepOnEmptyGraphFails(t *testing.T) {
	e, _ := NewEngine(2, DefaultConfig())
	if err := e.Step(); err == nil {
		t.Fatal("empty-graph step accepted")
	}
}

func TestAddQueryValidation(t *testing.T) {
	e, _ := NewEngine(2, DefaultConfig())
	lab := func(a, s int) (float64, bool) { return 0, true }
	if err := e.AddQuery(Query{Name: "q", Delta: 1, Labeler: lab}); err == nil {
		t.Fatal("no anchors accepted")
	}
	if err := e.AddQuery(Query{Name: "q", Anchors: []int{0}, Labeler: lab}); err == nil {
		t.Fatal("zero delta accepted")
	}
	if err := e.AddQuery(Query{Name: "q", Anchors: []int{0}, Delta: 1}); err == nil {
		t.Fatal("nil labeler accepted")
	}
	if err := e.AddQuery(Query{Name: "q", Anchors: []int{0}, Delta: 1, Labeler: lab}); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
}

// endToEnd runs a small drifting stream through the engine and returns it.
func endToEnd(t *testing.T, cfg Config, steps int) *Engine {
	t.Helper()
	e, err := NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	const n = 12
	truth := make(map[[2]int]float64) // (anchor, step) -> value
	for i := 0; i < n; i++ {
		e.AddNode(0, []float64{float64(i % 2), 0, 1})
		e.SetNodeLabel(i, float64(i%2))
	}
	for i := 0; i < n; i++ {
		e.AddUndirectedEdge(i, (i+1)%n, 0)
	}
	err = e.AddQuery(Query{
		Name:      "activity",
		Anchors:   []int{0, 5},
		Delta:     1,
		Threshold: 0.5,
		Labeler: func(anchor, step int) (float64, bool) {
			v, ok := truth[[2]int{anchor, step}]
			return v, ok
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		// Per-step activity: feature-visible and autocorrelated.
		act := 0.5 + 0.4*float64(s%2)
		for _, a := range []int{0, 5} {
			e.SetFeature(a, []float64{act, 1, 1})
			truth[[2]int{a, s}] = act + 0.1*rng.Float64()
		}
		e.AddEdge(rng.Intn(n), rng.Intn(n), 0)
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestEngineEndToEndAllStrategies(t *testing.T) {
	for _, strat := range []string{StrategyFull, StrategyWeighted, StrategyKDE} {
		cfg := DefaultConfig()
		cfg.Strategy = strat
		cfg.Hidden = 8
		e := endToEnd(t, cfg, 10)
		if e.CurrentStep() != 10 {
			t.Fatalf("%s: step = %d", strat, e.CurrentStep())
		}
		outs := e.Outcomes()
		if len(outs) == 0 {
			t.Fatalf("%s: no outcomes", strat)
		}
		m := e.Metrics()
		if m.N == 0 || m.MSE < 0 {
			t.Fatalf("%s: metrics empty", strat)
		}
		if emb := e.Embedding(0); len(emb) != 8 {
			t.Fatalf("%s: embedding dim %d", strat, len(emb))
		}
		if e.Embedding(-1) != nil || e.Embedding(10000) != nil {
			t.Fatalf("%s: out-of-range embedding not nil", strat)
		}
	}
}

func TestEngineAllModels(t *testing.T) {
	for _, name := range ModelNames() {
		cfg := DefaultConfig()
		cfg.Model = name
		cfg.Hidden = 6
		e := endToEnd(t, cfg, 6)
		if len(e.Outcomes()) == 0 {
			t.Fatalf("%s: no outcomes", name)
		}
	}
}

func TestEngineAlertsFire(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 8
	e, err := NewEngine(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		e.AddNode(0, []float64{1, 1})
	}
	for i := 0; i < 6; i++ {
		e.AddUndirectedEdge(i, (i+1)%6, 0)
	}
	// A threshold below any plausible score guarantees alerts.
	err = e.AddQuery(Query{
		Name: "always", Anchors: []int{0}, Delta: 1, Threshold: -1e9,
		Labeler: func(a, s int) (float64, bool) { return 1, true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	alerts := e.TakeAlerts()
	if len(alerts) != 1 || alerts[0].Query != "always" || alerts[0].ForStep != 1 {
		t.Fatalf("alerts = %+v", alerts)
	}
	if len(e.TakeAlerts()) != 0 {
		t.Fatal("TakeAlerts did not drain")
	}
}

func TestEngineLinkPrediction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 8
	e, err := NewEngine(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableLinkPrediction()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 15; i++ {
		e.AddNode(0, []float64{float64(i % 3), 1})
	}
	for s := 0; s < 8; s++ {
		for k := 0; k < 6; k++ {
			u, v := rng.Intn(15), rng.Intn(15)
			if u != v {
				e.AddEdge(u, v, 0)
			}
		}
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.N == 0 || m.MRR == 0 {
		t.Fatalf("link prediction produced no metrics: %+v", m)
	}
}

func TestEngineWindowExpiry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowSteps = 2
	cfg.Hidden = 6
	e, err := NewEngine(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e.AddNode(0, []float64{1, 1})
	}
	e.AddEdge(0, 1, 0) // stamped step 0
	for s := 0; s < 4; s++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.NumEdges() != 0 {
		t.Fatalf("old edge not expired: %d edges", e.NumEdges())
	}
}

func TestEngineGrowsMidStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 6
	e, err := NewEngine(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := e.AddNode(0, []float64{1, 0})
	b := e.AddNode(0, []float64{0, 1})
	e.AddUndirectedEdge(a, b, 0)
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	c := e.AddNode(0, []float64{1, 1})
	e.SetNodeLabel(c, 1)
	e.AddUndirectedEdge(b, c, 0)
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if e.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", e.NumNodes())
	}
	if len(e.Embedding(c)) == 0 {
		t.Fatal("new node has no embedding")
	}
}

func TestDriftDetectionFiresOnRegimeChange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 8
	cfg.DriftDetection = true
	e, err := NewEngine(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		e.AddNode(0, []float64{1, 1})
	}
	for i := 0; i < n; i++ {
		e.AddUndirectedEdge(i, (i+1)%n, 0)
	}
	level := 1.0
	truth := map[int]float64{}
	err = e.AddQuery(Query{
		Name: "q", Anchors: []int{0}, Delta: 1, Threshold: 1e9,
		Labeler: func(anchor, step int) (float64, bool) {
			v, ok := truth[step]
			return v, ok
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	for step := 0; step < 40; step++ {
		if step == 25 {
			level = 50 // abrupt regime change the model cannot anticipate
		}
		truth[step] = level
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		if e.DriftDetected() {
			if step < 25 {
				t.Fatalf("false drift alarm at step %d", step)
			}
			fired = true
		}
	}
	if !fired {
		t.Fatal("drift never detected after the regime change")
	}
}

func TestDriftDetectionDisabledByDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 6
	e := endToEnd(t, cfg, 6)
	if e.DriftDetected() {
		t.Fatal("drift flag set without detection enabled")
	}
}

// TestEngineDeterministicAcrossWorkers runs the same seeded stream with
// serial and 4-worker pair evaluation and requires bit-identical predictions,
// metrics and embeddings — the facade-level determinism guarantee.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Engine {
		cfg := DefaultConfig()
		cfg.Strategy = StrategyWeighted
		cfg.Hidden = 8
		cfg.PairsPerStep = 3
		cfg.Workers = workers
		return endToEnd(t, cfg, 10)
	}
	e1, e4 := run(1), run(4)
	o1, o4 := e1.Outcomes(), e4.Outcomes()
	if len(o1) == 0 || len(o1) != len(o4) {
		t.Fatalf("outcome counts %d vs %d", len(o1), len(o4))
	}
	for i := range o1 {
		if o1[i] != o4[i] {
			t.Fatalf("outcome %d diverged: %+v vs %+v", i, o1[i], o4[i])
		}
	}
	m1, m4 := e1.Metrics(), e4.Metrics()
	sameFloat := func(a, b float64) bool { return a == b || (math.IsNaN(a) && math.IsNaN(b)) }
	if m1.N != m4.N || !sameFloat(m1.MSE, m4.MSE) || !sameFloat(m1.Accuracy, m4.Accuracy) ||
		!sameFloat(m1.AUC, m4.AUC) || !sameFloat(m1.MRR, m4.MRR) {
		t.Fatalf("metrics diverged: %+v vs %+v", m1, m4)
	}
	for v := 0; v < e1.NumNodes(); v++ {
		b1, b4 := e1.Embedding(v), e4.Embedding(v)
		for j := range b1 {
			if b1[j] != b4[j] {
				t.Fatalf("embedding of %d diverged at %d: %v vs %v", v, j, b1[j], b4[j])
			}
		}
	}
	s1, s4 := e1.Stats(), e4.Stats()
	if s1.TrainedPartitions != s4.TrainedPartitions || s1.ChipEntropy != s4.ChipEntropy {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s4)
	}
	if s1.ParallelUnits != 0 || s4.ParallelUnits == 0 {
		t.Fatalf("ParallelUnits: serial %d, parallel %d", s1.ParallelUnits, s4.ParallelUnits)
	}
}

// TestEngineCacheStatsObservable checks the partition-cache counters surface
// through Stats with a meaningful hit rate on a warm adaptive run.
func TestEngineCacheStatsObservable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 8
	e := endToEnd(t, cfg, 10)
	s := e.Stats()
	if s.CacheMisses == 0 {
		t.Fatalf("no cache misses recorded: %+v", s)
	}
	if s.CacheHitRate < 0 || s.CacheHitRate > 1 {
		t.Fatalf("hit rate %v out of [0,1]", s.CacheHitRate)
	}
	// Disabling the cache removes the counters entirely.
	cfgOff := DefaultConfig()
	cfgOff.Strategy = StrategyWeighted
	cfgOff.Hidden = 8
	cfgOff.PartitionCacheCap = -1
	eo := endToEnd(t, cfgOff, 5)
	if so := eo.Stats(); so.CacheMisses != 0 || so.CacheHits != 0 {
		t.Fatalf("cache disabled but counters non-zero: %+v", so)
	}
}

func TestEngineStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKDE
	cfg.Hidden = 8
	e := endToEnd(t, cfg, 10)
	s := e.Stats()
	if s.TrainedPartitions == 0 {
		t.Fatal("no partitions reported")
	}
	if s.SupNodeTargets == 0 && s.ReplayTargets == 0 {
		t.Fatal("no supervised material reported")
	}
	if s.ChipEntropy <= 0 || s.ChipEntropy > 1 {
		t.Fatalf("chip entropy %v out of (0,1]", s.ChipEntropy)
	}
	if len(s.TopChipNodes) == 0 || len(s.TopChipNodes) > 5 {
		t.Fatalf("top chip nodes %v", s.TopChipNodes)
	}
	// Full strategy exposes trainer counters but no chip state.
	cfgFull := DefaultConfig()
	cfgFull.Strategy = StrategyFull
	cfgFull.Hidden = 8
	ef := endToEnd(t, cfgFull, 5)
	sf := ef.Stats()
	if sf.TrainedPartitions != 0 || sf.ChipEntropy != 0 || sf.TopChipNodes != nil {
		t.Fatalf("full-strategy stats should carry no chip state: %+v", sf)
	}
	if sf.SelfNodeTargets == 0 {
		t.Fatal("full-strategy trainer counters missing")
	}
	// Before the first step, stats are zero-valued.
	fresh, _ := NewEngine(2, DefaultConfig())
	if s := fresh.Stats(); s.TrainedPartitions != 0 || s.ChipEntropy != 0 {
		t.Fatal("fresh engine should report empty stats")
	}
}
