package streamgnn

import "testing"

func TestTelemetryPopulated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 6
	cfg.WindowSteps = 4
	e := endToEnd(t, cfg, 5)

	tel := e.Telemetry()
	if tel.Steps != 5 {
		t.Fatalf("Steps = %d, want 5", tel.Steps)
	}
	if tel.Step.Count != 5 {
		t.Fatalf("whole-step histogram count = %d, want 5", tel.Step.Count)
	}
	if tel.Step.Sum <= 0 {
		t.Fatalf("whole-step histogram sum = %v, want > 0", tel.Step.Sum)
	}
	for _, name := range StepPhases() {
		h, ok := tel.Phases[name]
		if !ok {
			t.Fatalf("phase %q missing from telemetry", name)
		}
		if h.Count != 5 {
			t.Fatalf("phase %q count = %d, want 5", name, h.Count)
		}
		var bucketed int64
		for _, c := range h.Counts {
			bucketed += c
		}
		if bucketed != h.Count {
			t.Fatalf("phase %q buckets sum to %d, count is %d", name, bucketed, h.Count)
		}
		if len(h.Counts) != len(h.Bounds)+1 {
			t.Fatalf("phase %q has %d counts for %d bounds", name, len(h.Counts), len(h.Bounds))
		}
	}
	// Phase times nest inside the whole-step time.
	var phaseSum float64
	for _, h := range tel.Phases {
		phaseSum += h.Sum
	}
	if phaseSum > tel.Step.Sum {
		t.Fatalf("phase sums (%v) exceed whole-step sum (%v)", phaseSum, tel.Step.Sum)
	}
}

func TestTelemetryZeroBeforeStepping(t *testing.T) {
	e, err := NewEngine(3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tel := e.Telemetry()
	if tel.Steps != 0 || tel.Step.Count != 0 {
		t.Fatalf("fresh engine reports telemetry: %+v", tel)
	}
	if got := len(tel.Phases); got != len(StepPhases()) {
		t.Fatalf("fresh engine has %d phase histograms, want %d", got, len(StepPhases()))
	}
}
