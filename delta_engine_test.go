package streamgnn

import (
	"fmt"
	"math"
	"testing"
)

func TestNewEngineRejectsDirtyFullThresholdAboveOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DirtyFullThreshold = 1.5
	if _, err := NewEngine(3, cfg); err == nil {
		t.Fatal("DirtyFullThreshold > 1 accepted (it is a fraction of the graph)")
	}
	cfg.DirtyFullThreshold = 1 // the documented never-fall-back value stays legal
	if _, err := NewEngine(3, cfg); err != nil {
		t.Fatalf("DirtyFullThreshold = 1 rejected: %v", err)
	}
}

func TestNewEngineRejectsDeltaEpsilonOutOfRange(t *testing.T) {
	for _, eps := range []float64{-0.1, 1.5} {
		cfg := DefaultConfig()
		cfg.DeltaForward = true
		cfg.DeltaEpsilon = eps
		if _, err := NewEngine(3, cfg); err == nil {
			t.Fatalf("DeltaEpsilon = %v accepted", eps)
		}
	}
}

// At epsilon 0 a DeltaForward engine must be bit-identical to the full
// baseline at every step, for every delta-capable model kind — including the
// recurrent ones, which region splicing can only approximate. Kinds without a
// delta decomposition must silently keep the splice ladder.
func TestDeltaForwardBitEqualsFullAllKinds(t *testing.T) {
	capable := 0
	for _, name := range ModelNames() {
		base := DefaultConfig()
		base.Model = name
		base.Strategy = StrategyWeighted
		base.Hidden = 8
		base.Seed = 7
		base.Interval = 25 // train occasionally: delta caches must survive invalidation

		del := base
		del.DeltaForward = true
		del.DirtyFullThreshold = 1 // never abort on the candidate budget

		const n, steps = 40, 60
		d := incStream{n: n}
		eFull, err := NewEngine(3, base)
		if err != nil {
			t.Fatal(err)
		}
		eDelta, err := NewEngine(3, del)
		if err != nil {
			t.Fatal(err)
		}
		d.init(t, eFull)
		d.init(t, eDelta)

		isCapable := eDelta.deltaFwd != nil
		for s := 0; s < steps; s++ {
			d.mutate(eFull, s)
			d.mutate(eDelta, s)
			if err := eFull.Step(); err != nil {
				t.Fatalf("%s full step %d: %v", name, s, err)
			}
			if err := eDelta.Step(); err != nil {
				t.Fatalf("%s delta step %d: %v", name, s, err)
			}
			if isCapable {
				sameMatrix(t, s, eFull.lastEmb.Data, eDelta.lastEmb.Data)
			} else if eDelta.lastEmb.Rows != eDelta.NumNodes() {
				t.Fatalf("%s step %d: embedding rows %d, nodes %d", name, s, eDelta.lastEmb.Rows, eDelta.NumNodes())
			}
		}

		tele := eDelta.Telemetry()
		if isCapable {
			capable++
			if tele.DeltaForwards == 0 {
				t.Fatalf("%s: delta path never ran; test proved nothing", name)
			}
			if tele.DeltaCandidateRows == 0 {
				t.Fatalf("%s: delta passes recomputed no rows", name)
			}
			// Training every 25 steps forces ~steps/25 full forwards (plus
			// step 0); everything else must have gone through a delta pass.
			if tele.FullForwards > steps/25+2 {
				t.Fatalf("%s: too many full forwards: %d of %d steps", name, tele.FullForwards, steps)
			}
		} else if tele.DeltaForwards != 0 || tele.DeltaAborts != 0 {
			t.Fatalf("%s has no delta decomposition but ran %d delta passes / %d aborts",
				name, tele.DeltaForwards, tele.DeltaAborts)
		}
	}
	if capable != 5 {
		t.Fatalf("%d delta-capable kinds, want 5", capable)
	}
}

// At epsilon > 0 pruning discards sub-epsilon recomputations; the embeddings
// of a recurrent model must stay within a small structural bound of the full
// baseline's — the bounded-error regime at engine level.
func TestDeltaForwardBoundedErrorStateful(t *testing.T) {
	const eps = 1e-4
	base := DefaultConfig()
	base.Model = "TGCN"
	base.Strategy = StrategyWeighted
	base.Hidden = 8
	base.Seed = 3
	base.Interval = 1000 // train only at step 0: drift comes from pruning alone

	del := base
	del.DeltaForward = true
	del.DeltaEpsilon = eps
	del.DirtyFullThreshold = 1

	const n, steps = 40, 30
	d := incStream{n: n}
	eFull, err := NewEngine(3, base)
	if err != nil {
		t.Fatal(err)
	}
	eDelta, err := NewEngine(3, del)
	if err != nil {
		t.Fatal(err)
	}
	d.init(t, eFull)
	d.init(t, eDelta)
	for s := 0; s < steps; s++ {
		d.mutate(eFull, s)
		d.mutate(eDelta, s)
		if err := eFull.Step(); err != nil {
			t.Fatal(err)
		}
		if err := eDelta.Step(); err != nil {
			t.Fatal(err)
		}
		tol := eps * 1e3 * float64(s+1)
		a, b := eFull.lastEmb.Data, eDelta.lastEmb.Data
		if len(a) != len(b) {
			t.Fatalf("step %d: embedding lengths differ: %d vs %d", s, len(a), len(b))
		}
		for i := range a {
			if diff := math.Abs(a[i] - b[i]); diff > tol {
				t.Fatalf("step %d: emb[%d] drifted %v > %v", s, i, diff, tol)
			}
		}
	}
}

// Two runs of the same DeltaForward configuration over the same stream must
// be bit-identical after 200 steps — the repeat-run determinism regime, with
// a nonzero epsilon so pruning decisions are part of the trajectory.
func TestDeltaForwardRepeatRun200(t *testing.T) {
	run := func() *Engine {
		cfg := DefaultConfig()
		cfg.Model = "TGCN"
		cfg.Strategy = StrategyWeighted
		cfg.Hidden = 8
		cfg.Seed = 11
		cfg.Interval = 7
		cfg.DeltaForward = true
		cfg.DeltaEpsilon = 1e-3
		cfg.DirtyFullThreshold = 1
		const n, steps = 50, 200
		d := incStream{n: n}
		e, err := NewEngine(3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.init(t, e)
		for s := 0; s < steps; s++ {
			d.mutate(e, s)
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	e1, e2 := run(), run()
	sameMatrix(t, 200, e1.lastEmb.Data, e2.lastEmb.Data)
	if m1, m2 := fmt.Sprintf("%+v", e1.Metrics()), fmt.Sprintf("%+v", e2.Metrics()); m1 != m2 {
		t.Fatalf("metrics diverged between repeat runs:\n  %s\n  %s", m1, m2)
	}
	if e1.Telemetry().DeltaForwards == 0 {
		t.Fatal("delta path never ran")
	}
	if e1.Telemetry().DeltaPrunedRows == 0 {
		t.Fatal("epsilon 1e-3 pruned nothing across 200 steps")
	}
}

// Checkpoint resume with DeltaForward at epsilon 0: the v6 delta caches ride
// along and the resumed run must be indistinguishable from the uninterrupted
// one.
func TestCheckpointResumeEqualityDeltaForward(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = "TGCN"
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 6
	cfg.Interval = 3
	cfg.DeltaForward = true
	cfg.DirtyFullThreshold = 1
	resumeEquality(t, cfg)
}

// The same with a nonzero epsilon: the stage caches carry sub-epsilon drift
// the model recomputation cannot reproduce, so this only passes if the
// checkpoint actually restores the caches (v6) rather than resynchronizing
// with a full forward.
func TestCheckpointResumeEqualityDeltaForwardEpsilon(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = "TGCN"
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 6
	cfg.Interval = 3
	cfg.DeltaForward = true
	cfg.DeltaEpsilon = 1e-3
	cfg.DirtyFullThreshold = 1
	resumeEquality(t, cfg)
}

// A memoryless kind on the delta path must also survive checkpoint resume.
func TestCheckpointResumeEqualityDeltaForwardWinGNN(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = "WinGNN"
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 6
	cfg.Interval = 3
	cfg.DeltaForward = true
	cfg.DirtyFullThreshold = 1
	resumeEquality(t, cfg)
}
