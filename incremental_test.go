package streamgnn

import (
	"testing"
)

// incStream drives two engines through an identical sparse-update stream:
// per step, a couple of feature updates and an occasional new edge, touching
// a small fraction of the graph.
type incStream struct{ n int }

func (d incStream) init(t *testing.T, e *Engine) {
	t.Helper()
	for i := 0; i < d.n; i++ {
		e.AddNode(0, []float64{float64(i % 3), 0, 1})
		e.SetNodeLabel(i, float64(i%2))
	}
	for i := 0; i < d.n; i++ {
		e.AddUndirectedEdge(i, (i+1)%d.n, 0)
	}
	err := e.AddQuery(Query{
		Name: "act", Anchors: []int{0, d.n / 2}, Delta: 1, Threshold: 0.5,
		Labeler: func(anchor, step int) (float64, bool) {
			return float64((anchor+step)%2) * 0.8, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func (d incStream) mutate(e *Engine, s int) {
	v := (s * 7) % d.n
	e.SetFeature(v, []float64{float64(s%5) * 0.2, 1, 1})
	if s%3 == 0 {
		e.AddEdge((s*11)%d.n, (s*13)%d.n, 0)
	}
}

func sameMatrix(t *testing.T, step int, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("step %d: embedding lengths differ: %d vs %d", step, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: embeddings differ at %d: %v vs %v", step, i, a[i], b[i])
		}
	}
}

// The tentpole guarantee: for a memoryless model, incremental dirty-region
// inference is bit-identical to the full forward at every step of a long
// mutated stream — including steps right after training invalidated the
// cache, quiet regions, and splices into grown matrices.
func TestIncrementalForwardBitExactMemoryless(t *testing.T) {
	base := DefaultConfig()
	base.Model = "WinGNN"
	base.Strategy = StrategyWeighted
	base.Hidden = 8
	base.Seed = 7
	base.Interval = 25 // train occasionally: cache must survive invalidation

	inc := base
	inc.IncrementalForward = true
	inc.DirtyFullThreshold = 1 // never fall back on region size

	const n, steps = 80, 200
	d := incStream{n: n}
	eFull, err := NewEngine(3, base)
	if err != nil {
		t.Fatal(err)
	}
	eInc, err := NewEngine(3, inc)
	if err != nil {
		t.Fatal(err)
	}
	d.init(t, eFull)
	d.init(t, eInc)

	for s := 0; s < steps; s++ {
		d.mutate(eFull, s)
		d.mutate(eInc, s)
		if err := eFull.Step(); err != nil {
			t.Fatal(err)
		}
		if err := eInc.Step(); err != nil {
			t.Fatal(err)
		}
		sameMatrix(t, s, eFull.lastEmb.Data, eInc.lastEmb.Data)
	}

	tele := eInc.Telemetry()
	if tele.IncrementalForwards == 0 {
		t.Fatal("incremental path never ran; test proved nothing")
	}
	// Training every 25 steps forces ~steps/25 full forwards (plus step 0);
	// everything else must have gone incremental.
	if tele.FullForwards > steps/25+2 {
		t.Fatalf("too many full forwards: %d of %d steps", tele.FullForwards, steps)
	}
	if tele.SkippedRows == 0 {
		t.Fatal("no rows were skipped")
	}
	if eFull.Telemetry().IncrementalForwards != 0 {
		t.Fatal("baseline engine took the incremental path")
	}
}

// Quiet steps — no graph mutations since the last forward — must serve the
// cached matrix without recomputing anything.
func TestIncrementalForwardQuietStep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = "WinGNN"
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 8
	cfg.Interval = 1000 // no training inside the run
	cfg.IncrementalForward = true

	d := incStream{n: 20}
	e, err := NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.init(t, e)
	// Step 0 is a full forward (cold cache) and also trains (0 % Interval
	// == 0), invalidating the cache; step 1 rebuilds it with another full
	// forward. Steps 2-4 are quiet: no mutations, no training.
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	before := e.lastEmb
	for s := 2; s <= 4; s++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.lastEmb != before {
		t.Fatal("quiet steps rebuilt the embedding matrix")
	}
	tele := e.Telemetry()
	if tele.IncrementalForwards != 3 || tele.FullForwards != 2 {
		t.Fatalf("forwards = %d inc / %d full, want 3/2", tele.IncrementalForwards, tele.FullForwards)
	}
	if tele.SkippedRows != 3*20 {
		t.Fatalf("SkippedRows = %d, want 60", tele.SkippedRows)
	}
}

// A tiny DirtyFullThreshold must push every dirty step onto the full path.
func TestIncrementalForwardThresholdFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = "WinGNN"
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 8
	cfg.Interval = 1000
	cfg.IncrementalForward = true
	cfg.DirtyFullThreshold = 1e-9

	d := incStream{n: 20}
	e, err := NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.init(t, e)
	for s := 0; s < 5; s++ {
		d.mutate(e, s)
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	tele := e.Telemetry()
	if tele.FullForwards != 5 || tele.IncrementalForwards != 0 {
		t.Fatalf("forwards = %d full / %d inc, want 5/0", tele.FullForwards, tele.IncrementalForwards)
	}
}

func TestIncrementalForwardRejectsNegativeThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DirtyFullThreshold = -0.5
	if _, err := NewEngine(3, cfg); err == nil {
		t.Fatal("negative DirtyFullThreshold accepted")
	}
}

// RefreshEverySteps=1 degenerates incremental mode into a full forward per
// step, which must reproduce the baseline exactly even for a recurrent
// model — the bounded-staleness knob at its tightest.
func TestIncrementalRefreshEveryStepMatchesBaselineTGCN(t *testing.T) {
	base := DefaultConfig()
	base.Model = "TGCN"
	base.Strategy = StrategyWeighted
	base.Hidden = 8
	base.Seed = 3

	inc := base
	inc.IncrementalForward = true
	inc.RefreshEverySteps = 1

	d := incStream{n: 30}
	e1, err := NewEngine(3, base)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(3, inc)
	if err != nil {
		t.Fatal(err)
	}
	d.init(t, e1)
	d.init(t, e2)
	for s := 0; s < 30; s++ {
		d.mutate(e1, s)
		d.mutate(e2, s)
		if err := e1.Step(); err != nil {
			t.Fatal(err)
		}
		if err := e2.Step(); err != nil {
			t.Fatal(err)
		}
		sameMatrix(t, s, e1.lastEmb.Data, e2.lastEmb.Data)
	}
	if got := e2.Telemetry().FullForwards; got != 30 {
		t.Fatalf("FullForwards = %d, want 30", got)
	}
}

// Recurrent models run the incremental path without error and keep
// embedding shapes consistent; their semantics are bounded-staleness, so
// only structure is asserted here.
func TestIncrementalForwardStatefulRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = "TGCN"
	cfg.Strategy = StrategyWeighted
	cfg.Hidden = 8
	cfg.Interval = 10
	cfg.IncrementalForward = true
	cfg.DirtyFullThreshold = 1

	d := incStream{n: 40}
	e, err := NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.init(t, e)
	for s := 0; s < 40; s++ {
		d.mutate(e, s)
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		if e.lastEmb.Rows != e.NumNodes() || e.lastEmb.Cols != 8 {
			t.Fatalf("step %d: embedding shape %dx%d", s, e.lastEmb.Rows, e.lastEmb.Cols)
		}
	}
	if e.Telemetry().IncrementalForwards == 0 {
		t.Fatal("incremental path never ran")
	}
}
