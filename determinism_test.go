package streamgnn

import (
	"fmt"
	"testing"
)

// TestRepeatRunBitEquality200 runs the same seeded 200-step stream twice in
// fresh engines and requires the runs to be bit-identical: outcomes, metrics,
// stats and every node embedding. This is the invariant the detorder analyzer
// exists to protect — any map-iteration order, global-rand draw or wall-clock
// read leaking into the computation shows up here as a one-in-a-few-runs
// flake, so the stream is long enough (200 steps) to make order leaks
// overwhelmingly likely to surface. KDE strategy exercises the kde, sampling
// and graph packages on top of the core training path.
func TestRepeatRunBitEquality200(t *testing.T) {
	run := func() *Engine {
		cfg := DefaultConfig()
		cfg.Strategy = StrategyKDE
		cfg.Hidden = 6
		cfg.PairsPerStep = 2
		return endToEnd(t, cfg, 200)
	}
	e1, e2 := run(), run()

	o1, o2 := e1.Outcomes(), e2.Outcomes()
	if len(o1) == 0 || len(o1) != len(o2) {
		t.Fatalf("outcome counts %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outcome %d diverged: %+v vs %+v", i, o1[i], o2[i])
		}
	}
	// NaN-safe comparison via formatting (AUC is NaN when one class is
	// absent, and NaN != NaN).
	if m1, m2 := e1.Metrics(), e2.Metrics(); fmt.Sprintf("%+v", m1) != fmt.Sprintf("%+v", m2) {
		t.Fatalf("metrics diverged:\n  run 1: %+v\n  run 2: %+v", m1, m2)
	}
	if s1, s2 := e1.Stats(), e2.Stats(); fmt.Sprintf("%+v", s1) != fmt.Sprintf("%+v", s2) {
		t.Fatalf("stats diverged:\n  run 1: %+v\n  run 2: %+v", s1, s2)
	}
	for v := 0; v < e1.NumNodes(); v++ {
		b1, b2 := e1.Embedding(v), e2.Embedding(v)
		if len(b1) != len(b2) {
			t.Fatalf("embedding dims of node %d differ: %d vs %d", v, len(b1), len(b2))
		}
		for j := range b1 {
			if b1[j] != b2[j] {
				t.Fatalf("embedding of node %d diverged at %d: %v vs %v", v, j, b1[j], b2[j])
			}
		}
	}
}
